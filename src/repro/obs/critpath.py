"""Critical-path extraction over completed request span trees.

:mod:`repro.obs.attrib` answers "where did the *total* time go"; this
module answers the per-request question the paper's traces are really
about: for **one** request, which chain of child spans determined its
latency?  An 8 KB read that took 40 ms spent that time *somewhere* — in
the driver queue behind the writer, on the arm, in the throttle — and
the critical path names the culprit interval by interval.

Algorithm
---------
For each closed root span the request's lifetime ``[begin, end]`` is
swept over the boundary points of its descendant spans; at every
instant the winner is chosen by **the same priority rules as the
attribution sweep** (:mod:`repro.obs.attrib`): among active *wait*
spans (``queue_wait``, ``rotation_seek``, ``transfer``,
``throttle_wait``, ``mem_wait``, ``rpc``; then ``service``) the
highest-priority one wins, ties broken by category order, then depth,
begin time, and span id so the sweep is deterministic.  When no wait
span is active the **deepest** structural span wins — that's the
request on the CPU inside ``read``/``getpage``/``cluster_read``, and
it is what gives flamegraph stacks their shape.  Instants no
descendant covers belong to the root itself.

The winning intervals, merged, are the critical path: a sequence of
:class:`Segment` objects whose durations sum to the request's latency
(the conservation invariant).  Because the winner rule reuses attrib's
priority key verbatim, the per-category blame totals equal
:func:`repro.obs.attrib.attribution_table`'s by construction — even
when concurrent sibling I/Os (clustered readahead) overlap their
waits — which :func:`verify_against_attribution` cross-checks.

Open spans
----------
A span with no end would silently contribute zero duration
(:attr:`Span.duration`) and corrupt the math.  Analyzers here never let
that happen quietly: still-open *roots* are excluded and counted
(``open_roots``), still-open *descendants* of a closed root are clamped
to the root's end and counted (``open_spans``) — both counts surface in
reports so a leaked span is a visible data-quality warning, not a
misattribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.obs.attrib import (
    _SPAN_CATEGORY, ATTRIBUTION_CATEGORIES, attribution_table,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.trace import Span, Tracer

_CATEGORY_ORDER = {name: i for i, name in enumerate(ATTRIBUTION_CATEGORIES)}


def span_category(name: str) -> str:
    """The attribution category a span name belongs to.

    Structural spans (``read``, ``getpage``, ``disk_io``,
    ``disk_io[mN]`` …) default to ``cpu``: their *own* uncovered time is
    the request computing, not a wait.
    """
    mapped = _SPAN_CATEGORY.get(name)
    return mapped[0] if mapped is not None else "cpu"


@dataclass(frozen=True)
class Segment:
    """One interval of a request's critical path.

    ``span`` is the deepest span active over ``[begin, end)`` — the root
    itself for pure-CPU stretches.
    """

    span: "Span"
    begin: float
    end: float
    depth: int

    @property
    def duration(self) -> float:
        return self.end - self.begin

    @property
    def category(self) -> str:
        return span_category(self.span.name)

    def describe(self) -> str:
        return (f"{self.span.name:<16} [{self.begin * 1e3:10.3f}ms "
                f"+{self.duration * 1e3:8.3f}ms] depth={self.depth}")


class CriticalPath:
    """The critical path of one completed request root."""

    __slots__ = ("root", "segments", "open_spans")

    def __init__(self, root: "Span", segments: "list[Segment]",
                 open_spans: int):
        self.root = root
        self.segments = segments
        #: Descendant spans that were still open and had to be clamped.
        self.open_spans = open_spans

    @property
    def latency(self) -> float:
        assert self.root.end is not None
        return self.root.end - self.root.begin

    @property
    def path_time(self) -> float:
        """Sum of segment durations; equals :attr:`latency` to float
        tolerance (the conservation invariant)."""
        return sum(seg.duration for seg in self.segments)

    def blame(self) -> dict[str, float]:
        """Seconds on the path per span *name* (self time under the root's
        own name), largest first; deterministic tie order by name."""
        totals: dict[str, float] = {}
        for seg in self.segments:
            totals[seg.span.name] = totals.get(seg.span.name, 0.0) + seg.duration
        return dict(sorted(totals.items(), key=lambda kv: (-kv[1], kv[0])))

    def categories(self) -> dict[str, float]:
        """Seconds on the path per attribution category (all categories
        present, zeros included) — the attrib.py-comparable view."""
        totals = dict.fromkeys(ATTRIBUTION_CATEGORIES, 0.0)
        for seg in self.segments:
            totals[seg.category] += seg.duration
        return totals

    def dominant(self) -> str:
        """The category that got the most of this request's time."""
        totals = self.categories()
        return max(ATTRIBUTION_CATEGORIES,
                   key=lambda c: (totals[c], -_CATEGORY_ORDER[c]))

    def describe(self) -> str:
        top = self.dominant()
        share = (self.categories()[top] / self.latency * 100.0
                 if self.latency > 0 else 0.0)
        warn = f" open_spans={self.open_spans}" if self.open_spans else ""
        return (f"{self.root.name:<10} #{self.root.fields.get('request', self.root.id):<5} "
                f"{self.latency * 1e3:9.3f}ms dominated by {top} "
                f"({share:.0f}%){warn}")

    def render(self) -> str:
        """The whole chain, one line per merged interval."""
        lines = [self.describe()]
        lines.extend("  " + seg.describe() for seg in self.segments)
        return "\n".join(lines)


def _descend(root: "Span", children: "dict[int, list[Span]]"
             ) -> "list[tuple[Span, int]]":
    out: list[tuple["Span", int]] = []
    stack: list[tuple["Span", int]] = [(root, 0)]
    while stack:
        span, depth = stack.pop()
        kids = children.get(span.id)
        if kids:
            out.extend((k, depth + 1) for k in kids)
            stack.extend((k, depth + 1) for k in kids)
    return out


def critical_path(tracer: "Tracer", root: "Span",
                  children: "dict[int, list[Span]] | None" = None
                  ) -> CriticalPath:
    """Extract the critical path of one *closed* root span.

    Open descendants are clamped to the root's end and counted on the
    returned path's ``open_spans``; passing an open root is a ValueError
    (exclude and count those at the report level).
    """
    if root.end is None:
        raise ValueError(f"root span {root.id} ({root.name}) is still open")
    if children is None:
        children = tracer.children_index()
    lo, hi = root.begin, root.end
    open_spans = 0

    # (begin, end, depth, span, mapped) clamped into the root's lifetime;
    # mapped is attrib's (category, priority) or None for structural spans.
    intervals: list[tuple[float, float, int, "Span", "tuple | None"]] = []
    for span, depth in _descend(root, children):
        end = span.end
        if end is None:
            open_spans += 1
            end = hi
        begin = max(span.begin, lo)
        end = min(end, hi)
        if end > begin:
            intervals.append((begin, end, depth, span,
                              _SPAN_CATEGORY.get(span.name)))

    segments: list[Segment] = []
    if hi > lo:
        points = sorted({lo, hi, *(b for b, _, _, _, _ in intervals),
                         *(e for _, e, _, _, _ in intervals)})
        for seg_lo, seg_hi in zip(points, points[1:]):
            # Two candidate pools, exactly mirroring attrib's sweep: an
            # active wait/service span always beats a structural one.
            wait_key, wait = None, None
            deep_key, deep = None, None
            for begin, end, depth, span, mapped in intervals:
                if begin <= seg_lo and end >= seg_hi:
                    if mapped is not None:
                        key = (mapped[1], -_CATEGORY_ORDER[mapped[0]],
                               depth, begin, span.id)
                        if wait_key is None or key > wait_key:
                            wait_key, wait = key, (span, depth)
                    else:
                        key = (depth, begin, span.id)
                        if deep_key is None or key > deep_key:
                            deep_key, deep = key, (span, depth)
            winner, winner_depth = wait or deep or (root, 0)
            last = segments[-1] if segments else None
            if last is not None and last.span is winner and last.end == seg_lo:
                segments[-1] = Segment(winner, last.begin, seg_hi, winner_depth)
            else:
                segments.append(Segment(winner, seg_lo, seg_hi, winner_depth))
    return CriticalPath(root, segments, open_spans)


class CritReport:
    """Critical paths of every completed request in a trace."""

    def __init__(self, paths: "list[CriticalPath]", open_roots: int):
        self.paths = paths
        #: Requests still in flight when the trace was snapshotted —
        #: excluded from every total below, never silently zeroed.
        self.open_roots = open_roots

    @property
    def open_spans(self) -> int:
        """Clamped still-open descendant spans across all paths."""
        return sum(p.open_spans for p in self.paths)

    def by_kind(self) -> dict[str, dict[str, object]]:
        """Per-request-kind blame totals, shaped like attrib's table:
        ``{kind: {"requests", "total", "categories"}}``, kinds sorted."""
        table: dict[str, dict[str, object]] = {}
        for path in self.paths:
            row = table.get(path.root.name)
            if row is None:
                row = table[path.root.name] = {
                    "requests": 0,
                    "total": 0.0,
                    "categories": dict.fromkeys(ATTRIBUTION_CATEGORIES, 0.0),
                }
            row["requests"] += 1
            row["total"] += path.latency
            cats = row["categories"]
            for category, seconds in path.categories().items():
                cats[category] += seconds
        return {kind: table[kind] for kind in sorted(table)}

    def top(self, n: int = 10) -> "list[CriticalPath]":
        """The ``n`` slowest requests, slowest first (id breaks ties)."""
        return sorted(self.paths,
                      key=lambda p: (-p.latency, p.root.id))[:n]

    def render(self, top_n: int = 5) -> str:
        """Blame table plus the top-N slowest requests with their paths."""
        lines = [f"critical paths: {len(self.paths)} requests"]
        if self.open_roots:
            lines.append(f"WARNING: {self.open_roots} request(s) still "
                         "open — excluded from every total")
        if self.open_spans:
            lines.append(f"WARNING: {self.open_spans} open child span(s) "
                         "clamped to their request's end")
        for kind, row in self.by_kind().items():
            cats = row["categories"]
            total = row["total"]
            parts = "  ".join(
                f"{c}={cats[c] * 1e3:.2f}ms"
                for c in ATTRIBUTION_CATEGORIES if cats[c] > 0.0)
            lines.append(f"  {kind:<10} n={row['requests']:<5} "
                         f"total={total * 1e3:10.2f}ms  {parts}")
        slow = self.top(top_n)
        if slow:
            lines.append(f"slowest {len(slow)} requests:")
            for path in slow:
                lines.extend("  " + line for line in
                             path.render().splitlines())
        return "\n".join(lines)

    def to_json(self) -> dict:
        """A JSON-ready summary (per-kind blame + top-10 one-liners)."""
        return {
            "requests": len(self.paths),
            "open_roots": self.open_roots,
            "open_spans": self.open_spans,
            "by_kind": self.by_kind(),
            "slowest": [
                {
                    "kind": p.root.name,
                    "request": p.root.fields.get("request", p.root.id),
                    "latency": p.latency,
                    "dominant": p.dominant(),
                    "categories": p.categories(),
                    "open_spans": p.open_spans,
                }
                for p in self.top(10)
            ],
        }


def critical_paths(tracer: "Tracer",
                   kinds: "Iterable[str] | None" = None) -> CritReport:
    """Extract every completed request's critical path from a trace.

    ``kinds`` restricts the roots considered (e.g. only ``read``); open
    roots are excluded and counted on the report.
    """
    wanted = set(kinds) if kinds is not None else None
    children = tracer.children_index()
    paths: list[CriticalPath] = []
    open_roots = 0
    for root in tracer.span_roots():
        if wanted is not None and root.name not in wanted:
            continue
        if root.end is None:
            open_roots += 1
            continue
        paths.append(critical_path(tracer, root, children))
    return CritReport(paths, open_roots)


def verify_conservation(report: CritReport, tol: float = 1e-9
                        ) -> "list[str]":
    """Check every path's segments sum to its latency (within ``tol``
    relative to the latency).  Returns human-readable violations."""
    problems = []
    for path in report.paths:
        bound = max(tol, abs(path.latency) * tol)
        if abs(path.path_time - path.latency) > bound:
            problems.append(
                f"{path.root.name} span {path.root.id}: path time "
                f"{path.path_time!r} != latency {path.latency!r}")
    return problems


def verify_against_attribution(tracer: "Tracer", report: CritReport,
                               tol: float = 1e-6) -> "list[str]":
    """Cross-check the per-kind blame totals against attrib.py's sweep.

    Both modules classify every instant of every completed request; they
    must agree per kind and category to within ``tol`` seconds (the two
    sweeps visit float boundaries in different orders).  Disagreement
    means one of the sweeps mis-blamed time — returned as messages, one
    per mismatched cell.
    """
    attrib = attribution_table(tracer)
    ours = report.by_kind()
    problems = []
    for kind in sorted(set(attrib) | set(ours)):
        a_row, o_row = attrib.get(kind), ours.get(kind)
        if a_row is None or o_row is None:
            problems.append(f"{kind}: present in only one table "
                            f"(attrib={a_row is not None})")
            continue
        for category in ATTRIBUTION_CATEGORIES:
            a = a_row["categories"][category]
            o = o_row["categories"][category]
            if abs(a - o) > tol:
                problems.append(f"{kind}/{category}: attrib={a!r} "
                                f"critpath={o!r}")
    return problems


__all__ = ["CritReport", "CriticalPath", "Segment", "critical_path",
           "critical_paths", "span_category", "verify_against_attribution",
           "verify_conservation"]
