"""The NFS server: stateless v2-style handlers over a server-side UFS.

Each RPC names the file by handle (its inode number); the server holds no
per-client state ("the beauty of NFS").  WRITEs are committed to stable
storage before the reply, v2-style — which makes remote writes painfully
synchronous and is half the reason biod write-behind exists on the client.

The server is its own "machine": its own CPU and its own disk stack; only
the network couples it to the client.  ``nfsd_threads`` requests are
served concurrently, as the real nfsd pool did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

from repro.errors import FileNotFoundError_
from repro.sim.events import Event
from repro.sim.resources import Resource
from repro.sim.stats import StatSet
from repro.units import US
from repro.vfs.vnode import PutFlags, RW

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine
    from repro.ufs.mount import UfsMount

#: Approximate on-the-wire size of an RPC header (v2 + UDP + IP).
RPC_HEADER = 128


@dataclass
class RpcResult:
    """What a handler returns: payload plus its wire size."""

    value: Any
    wire_bytes: int = RPC_HEADER


class NfsServer:
    """Serves LOOKUP/GETATTR/READ/WRITE/CREATE/COMMIT on a UfsMount."""

    def __init__(self, engine: "Engine", mount: "UfsMount",
                 nfsd_threads: int = 2, per_rpc_cpu: float = 300 * US):
        self.engine = engine
        self.mount = mount
        self.per_rpc_cpu = per_rpc_cpu
        self._nfsds = Resource(engine, capacity=nfsd_threads, name="nfsd")
        self.stats = StatSet("nfsd")

    # -- dispatch -----------------------------------------------------------
    def call(self, op: str, **args: Any) -> Generator[Any, Any, RpcResult]:
        """Run one RPC through the nfsd pool; returns the result."""
        yield self._nfsds.acquire()
        try:
            yield from self.mount.cpu.work("nfsd", self.per_rpc_cpu)
            handler = getattr(self, f"_op_{op.lower()}", None)
            if handler is None:
                raise ValueError(f"unknown NFS op {op!r}")
            result = yield from handler(**args)
            self.stats.incr(op.lower())
            return result
        finally:
            self._nfsds.release()

    # -- handlers ---------------------------------------------------------------
    def _op_lookup(self, path: str) -> Generator[Any, Any, RpcResult]:
        """Path -> file handle (inode number) + size."""
        vn = yield from self.mount.namei(path)
        return RpcResult((vn.inode.ino, vn.size))

    def _op_create(self, path: str) -> Generator[Any, Any, RpcResult]:
        try:
            vn = yield from self.mount.namei(path)
        except FileNotFoundError_:
            vn = yield from self.mount.create(path)
        return RpcResult((vn.inode.ino, vn.size))

    def _op_getattr(self, handle: int) -> Generator[Any, Any, RpcResult]:
        vn = yield from self.mount.iget(handle)
        return RpcResult(vn.size)

    def _op_read(self, handle: int, offset: int, count: int
                 ) -> Generator[Any, Any, RpcResult]:
        vn = yield from self.mount.iget(handle)
        data = yield from vn.rdwr(RW.READ, offset, count)
        assert isinstance(data, bytes)
        return RpcResult(data, wire_bytes=RPC_HEADER + len(data))

    def _op_write(self, handle: int, offset: int, data: bytes
                  ) -> Generator[Any, Any, RpcResult]:
        """v2 semantics: stable before the reply."""
        vn = yield from self.mount.iget(handle)
        n = yield from vn.rdwr(RW.WRITE, offset, data)
        # Commit this write's pages before replying.
        psize = self.mount.pagecache.page_size
        start = (offset // psize) * psize
        length = offset + len(data) - start
        yield from vn.putpage(start, length, PutFlags())
        return RpcResult(n)

    def _op_commit(self, handle: int) -> Generator[Any, Any, RpcResult]:
        vn = yield from self.mount.iget(handle)
        yield from vn.fsync()
        return RpcResult(None)
