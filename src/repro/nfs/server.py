"""The NFS server: stateless v2-style handlers over a server-side UFS.

Each RPC names the file by handle (its inode number); the server holds no
per-client state ("the beauty of NFS") — except the one piece of soft
state every real NFS server grew: an xid-keyed **duplicate-request cache**
(DRC).  A lossy wire makes clients retransmit, and a retransmitted
non-idempotent op (REMOVE, exclusive CREATE) re-executed verbatim turns
into the classic spurious-ENOENT/EEXIST bug.  :meth:`NfsServer.receive`
answers retransmissions from the cache instead of re-executing them, and
drops retransmissions of calls still in progress.

WRITEs are committed to stable storage before the reply, v2-style — which
makes remote writes painfully synchronous and is half the reason biod
write-behind exists on the client.

The server is its own "machine": its own CPU and its own disk stack; only
the network couples it to the client.  ``nfsd_threads`` requests are
served concurrently, as the real nfsd pool did.  When the attached
:class:`~repro.faults.netplan.NetFaultPlan` schedules a crash, the server
loses its volatile state: requests during the outage are dropped, replies
to calls caught mid-flight are lost, and the DRC cold-starts — the disk
itself is write-through, so durable bytes survive (the disk-side
``FaultPlan`` is where storage loss lives).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

from repro.errors import FileExistsError_, FileNotFoundError_, ReproError
from repro.sim.resources import Resource
from repro.sim.stats import StatSet
from repro.units import US
from repro.vfs.vnode import PutFlags, RW

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.netplan import NetFaultPlan
    from repro.sim.engine import Engine
    from repro.ufs.mount import UfsMount

#: Approximate on-the-wire size of an RPC header (v2 + UDP + IP).
RPC_HEADER = 128

#: Ops whose execution mutates the file system (DRC accounting).
MUTATING_OPS = frozenset({"create", "write", "remove"})

#: DRC sentinel: the original transmission is still executing.
_IN_PROGRESS = object()


@dataclass
class RpcResult:
    """What a handler returns: payload plus its wire size."""

    value: Any
    wire_bytes: int = RPC_HEADER


@dataclass
class RpcReply:
    """A reply as it goes on the wire: outcome plus payload.

    ``status`` is ``"ok"`` (payload is the result value) or ``"err"``
    (payload is the modelled :class:`~repro.errors.ReproError` — errors are
    replies too, and are cached in the DRC like any other).
    """

    status: str
    payload: Any
    wire_bytes: int = RPC_HEADER


class NfsServer:
    """Serves LOOKUP/GETATTR/READ/WRITE/CREATE/REMOVE/COMMIT on a UfsMount."""

    def __init__(self, engine: "Engine", mount: "UfsMount",
                 nfsd_threads: int = 2, per_rpc_cpu: float = 300 * US,
                 drc_size: int = 256,
                 fault_plan: "NetFaultPlan | None" = None):
        if drc_size < 0:
            raise ValueError("drc_size must be >= 0")
        self.engine = engine
        self.mount = mount
        self.per_rpc_cpu = per_rpc_cpu
        self.drc_size = drc_size
        self.fault_plan = fault_plan
        self._nfsds = Resource(engine, capacity=nfsd_threads, name="nfsd")
        self._drc: "OrderedDict[int, RpcReply]" = OrderedDict()
        self._crash_epoch = 0
        #: xids of mutating ops already executed once — accounting only (a
        #: real server has no such table; campaigns use it to prove the DRC
        #: made retransmitted mutations effectively exactly-once).
        self._executed_mutations: set[int] = set()
        self.stats = StatSet("nfsd")

    # -- the hardened entry point (one datagram arriving) ---------------------
    def receive(self, xid: int, op: str, corrupted: bool = False,
                **args: Any) -> Generator[Any, Any, "RpcReply | None"]:
        """Handle one arriving request datagram; None means no reply.

        The checksum is verified first (a corrupted request is discarded,
        never executed — a garbage WRITE must not reach the disk), then the
        crash window, then the DRC, and only then the real handler.
        """
        now = self.engine.now
        plan = self.fault_plan
        if plan is not None:
            epoch = plan.server_crash_epoch(now)
            if epoch > self._crash_epoch:
                # The machine went down and came back: volatile state gone.
                self._crash_epoch = epoch
                self._drc.clear()
                self.stats.incr("reboots")
            if plan.server_down(now):
                self.stats.incr("dropped_while_down")
                return None
        if corrupted:
            self.stats.incr("corrupt_requests_rejected")
            return None
        opkey = op.lower()
        if self.drc_size > 0:
            cached = self._drc.get(xid)
            if cached is _IN_PROGRESS:
                # The original is still executing; answering now would race
                # it, so the retransmission is dropped (the client's timer
                # covers us).
                self.stats.incr("drc_in_progress_drops")
                return None
            if cached is not None:
                self.stats.incr("drc_hits")
                self._drc.move_to_end(xid)
                return cached
            self._drc[xid] = _IN_PROGRESS  # type: ignore[assignment]
        if opkey in MUTATING_OPS:
            if xid in self._executed_mutations:
                self.stats.incr("duplicate_executions")
            self._executed_mutations.add(xid)
        try:
            result = yield from self.call(op, **args)
            reply = RpcReply("ok", result.value, result.wire_bytes)
        except ReproError as exc:
            reply = RpcReply("err", exc)
        if plan is not None and plan.server_crash_epoch(self.engine.now) > self._crash_epoch:
            # The server crashed while this call was executing: its reply
            # dies with the machine (the disk may already hold the side
            # effects — write-through), and the DRC entry never forms.
            self._drc.pop(xid, None)
            self.stats.incr("replies_lost_to_crash")
            return None
        if self.drc_size > 0:
            self._drc[xid] = reply
            self._drc.move_to_end(xid)
            while len(self._drc) > self.drc_size:
                self._drc.popitem(last=False)
                self.stats.incr("drc_evictions")
        return reply

    # -- dispatch -----------------------------------------------------------
    def call(self, op: str, **args: Any) -> Generator[Any, Any, RpcResult]:
        """Run one RPC through the nfsd pool; returns the result.

        When the server mount's tracer is enabled, each executed call gets
        an ``nfs_server`` span in the *server's* trace (the server is its
        own machine, so its spans live in its own tree — the client side's
        ``rpc`` span covers the wire and queueing from its vantage point).
        """
        trace = self.mount.trace
        span = None
        if trace.enabled:
            span = trace.span_begin("nfs_server", op=op.lower())
        try:
            yield self._nfsds.acquire()
            try:
                yield from self.mount.cpu.work("nfsd", self.per_rpc_cpu)
                handler = getattr(self, f"_op_{op.lower()}", None)
                if handler is None:
                    raise ValueError(f"unknown NFS op {op!r}")
                result = yield from handler(**args)
                self.stats.incr(op.lower())
                return result
            finally:
                self._nfsds.release()
        finally:
            if span is not None:
                trace.span_end(span)

    # -- handlers ---------------------------------------------------------------
    def _op_lookup(self, path: str) -> Generator[Any, Any, RpcResult]:
        """Path -> file handle (inode number) + size."""
        vn = yield from self.mount.namei(path)
        return RpcResult((vn.inode.ino, vn.size))

    def _op_create(self, path: str, exclusive: bool = False
                   ) -> Generator[Any, Any, RpcResult]:
        try:
            vn = yield from self.mount.namei(path)
            if exclusive:
                raise FileExistsError_(f"{path} exists")
        except FileNotFoundError_:
            vn = yield from self.mount.create(path)
        return RpcResult((vn.inode.ino, vn.size))

    def _op_getattr(self, handle: int) -> Generator[Any, Any, RpcResult]:
        vn = yield from self.mount.iget(handle)
        return RpcResult(vn.size)

    def _op_read(self, handle: int, offset: int, count: int
                 ) -> Generator[Any, Any, RpcResult]:
        vn = yield from self.mount.iget(handle)
        data = yield from vn.rdwr(RW.READ, offset, count)
        assert isinstance(data, bytes)
        return RpcResult(data, wire_bytes=RPC_HEADER + len(data))

    def _op_write(self, handle: int, offset: int, data: bytes
                  ) -> Generator[Any, Any, RpcResult]:
        """v2 semantics: stable before the reply."""
        vn = yield from self.mount.iget(handle)
        n = yield from vn.rdwr(RW.WRITE, offset, data)
        # Commit this write's pages before replying.
        psize = self.mount.pagecache.page_size
        start = (offset // psize) * psize
        length = offset + len(data) - start
        yield from vn.putpage(start, length, PutFlags())
        return RpcResult(n)

    def _op_remove(self, path: str) -> Generator[Any, Any, RpcResult]:
        """The canonical non-idempotent op: a second execution is ENOENT."""
        yield from self.mount.unlink(path)
        return RpcResult(None)

    def _op_commit(self, handle: int) -> Generator[Any, Any, RpcResult]:
        vn = yield from self.mount.iget(handle)
        yield from vn.fsync()
        return RpcResult(None)
