"""The NFS client: a vnode type whose backing store is across the wire.

``NfsVnode`` implements the same three entry points as UFS — rdwr,
getpage, putpage — which is the entire point of the vnode architecture:
"the main body of the kernel ... manipulate[s] a file system without
knowing the details of how it is implemented."

Pages live in the *client's* unified page cache, named by the NFS vnode,
exactly as figure 1 draws ``libc.so``.  A biod-style daemon effect is
modelled inline: sequential reads trigger one-block read-ahead RPCs, and
writes are issued write-behind with a bounded number outstanding.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.core import ReadAheadState, WriteThrottle
from repro.errors import InvalidArgumentError
from repro.nfs.net import Network
from repro.nfs.server import NfsServer, RPC_HEADER
from repro.sim.stats import StatSet
from repro.units import KB
from repro.vfs.vnode import PutFlags, RW, Vfs, Vnode, VnodeType

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu import Cpu
    from repro.sim.engine import Engine
    from repro.vm.page import Page
    from repro.vm.pagecache import PageCache

#: NFSv2 maximum transfer size.
NFS_MAXDATA = 8 * KB


class NfsMount(Vfs):
    """A client-side mount of a remote server."""

    def __init__(self, engine: "Engine", cpu: "Cpu", pagecache: "PageCache",
                 network: Network, server: NfsServer,
                 write_behind_limit: int = 64 * KB, name: str = "nfs0"):
        super().__init__(name)
        self.engine = engine
        self.cpu = cpu
        self.pagecache = pagecache
        self.network = network
        self.server = server
        self.write_behind_limit = write_behind_limit
        self.stats = StatSet(name)
        self._vnodes: dict[int, "NfsVnode"] = {}
        self._root: "NfsVnode | None" = None

    @property
    def root(self) -> "NfsVnode":
        if self._root is None:
            raise RuntimeError("call mount.activate() (a process) first")
        return self._root

    def activate(self) -> Generator[Any, Any, "NfsMount"]:
        handle, size = yield from self.rpc("LOOKUP", path="/")
        self._root = self._vnode_for(handle, size, VnodeType.DIRECTORY)
        return self

    # -- RPC plumbing ---------------------------------------------------------
    def rpc(self, op: str, request_bytes: int = RPC_HEADER,
            **args: Any) -> Generator[Any, Any, Any]:
        """One remote procedure call: request out, handler, reply back."""
        self.stats.incr("rpcs")
        self.stats.incr(f"rpc_{op.lower()}")
        yield from self.cpu.work("nfs_client", self.cpu.costs.syscall)
        yield from self.network.send_to_server(request_bytes)
        result = yield from self.server.call(op, **args)
        yield from self.network.send_to_client(result.wire_bytes)
        return result.value

    # -- namespace ---------------------------------------------------------------
    def _vnode_for(self, handle: int, size: int,
                   vtype: VnodeType = VnodeType.REGULAR) -> "NfsVnode":
        vn = self._vnodes.get(handle)
        if vn is None:
            vn = NfsVnode(self, handle, size, vtype)
            self._vnodes[handle] = vn
        else:
            vn.remote_size = max(vn.remote_size, size)
        return vn

    def open(self, path: str, create: bool = False
             ) -> Generator[Any, Any, "NfsVnode"]:
        """LOOKUP (or CREATE) a remote file; returns its vnode."""
        op = "CREATE" if create else "LOOKUP"
        request = RPC_HEADER + len(path)
        handle, size = yield from self.rpc(op, request_bytes=request,
                                           path=path)
        return self._vnode_for(handle, size)


class NfsVnode(Vnode):
    """A remote file, cached page by page on the client."""

    def __init__(self, mount: NfsMount, handle: int, size: int,
                 vtype: VnodeType = VnodeType.REGULAR):
        super().__init__(vtype)
        self.mount = mount
        self.handle = handle
        self.remote_size = size
        self.readahead = ReadAheadState()
        self.throttle = WriteThrottle(mount.engine,
                                      mount.write_behind_limit)

    @property
    def size(self) -> int:
        return self.remote_size

    # -- pages ------------------------------------------------------------------
    def _grab_page(self, offset: int) -> Generator[Any, Any, "Page"]:
        pc = self.mount.pagecache
        while True:
            page = pc.allocate(self, offset)
            if page is not None:
                return page
            yield from pc.wait_for_memory()

    def _fetch_page(self, offset: int) -> Generator[Any, Any, "Page"]:
        """READ one page from the server into the client cache."""
        pc = self.mount.pagecache
        page = pc.lookup(self, offset)
        if page is not None:
            if page.locked and not page.valid:
                yield from page.wait_unlocked()
                return (yield from self._fetch_page(offset))
            if page.valid:
                self.mount.stats.incr("cache_hits")
                return page
        page = yield from self._grab_page(offset)
        count = min(NFS_MAXDATA, max(0, self.remote_size - offset))
        if count == 0:
            page.zero()
        else:
            data = yield from self.mount.rpc(
                "READ", handle=self.handle, offset=offset, count=count,
            )
            page.fill(data)
        page.valid = True
        page.unlock()
        self.mount.stats.incr("remote_reads")
        return page

    def getpage(self, offset: int, rw: RW = RW.READ
                ) -> Generator[Any, Any, "Page"]:
        psize = self.mount.pagecache.page_size
        if offset % psize:
            raise InvalidArgumentError("offset not page aligned")
        action = self.readahead.observe(offset, psize, cached=False,
                                        readahead_enabled=False)
        page = yield from self._fetch_page(offset)
        page.referenced = True
        return page

    def putpage(self, offset: int, length: int, flags: PutFlags
                ) -> Generator[Any, Any, None]:
        """Write dirty pages back over the wire (stable on the server)."""
        pc = self.mount.pagecache
        psize = pc.page_size
        for page in pc.vnode_pages(self):
            if not (offset <= page.offset < offset + length):
                continue
            if not page.dirty or page.locked:
                continue
            page.lock()
            count = min(psize, self.remote_size - page.offset)
            if count <= 0:
                page.dirty = False
                page.unlock()
                continue
            data = bytes(page.data[:count])
            yield from self.mount.rpc(
                "WRITE", request_bytes=RPC_HEADER + len(data),
                handle=self.handle, offset=page.offset, data=data,
            )
            page.dirty = False
            page.unlock()
            self.mount.stats.incr("remote_writes")

    # -- rdwr ----------------------------------------------------------------------
    def rdwr(self, rw: RW, offset: int, payload: "bytes | int"
             ) -> Generator[Any, Any, "bytes | int"]:
        if rw is RW.READ:
            return (yield from self._read(offset, int(payload)))
        return (yield from self._write(offset, bytes(payload)))  # type: ignore[arg-type]

    def _read(self, offset: int, count: int) -> Generator[Any, Any, bytes]:
        cpu = self.mount.cpu
        psize = self.mount.pagecache.page_size
        if offset >= self.remote_size:
            return b""
        count = min(count, self.remote_size - offset)
        parts: list[bytes] = []
        remaining = count
        while remaining > 0:
            page_off = (offset // psize) * psize
            chunk = min(psize - (offset - page_off), remaining)
            action = self.readahead.observe(offset=page_off,
                                            page_size=psize, cached=False)
            # biod: asynchronous read-ahead daemons run ahead of the
            # consumer on sequential access.
            if action.sequential:
                for ahead in (1, 2, 3):
                    next_off = page_off + ahead * psize
                    if next_off >= self.remote_size:
                        break
                    if self.mount.pagecache.lookup(self, next_off) is None:
                        proc = self.mount.engine.process(
                            self._fetch_page(next_off), name="biod-read")
                        proc.add_callback(lambda _ev: None)
            page = yield from self._fetch_page(page_off)
            yield from cpu.copy("copyout", chunk)
            parts.append(bytes(page.data[offset - page_off:
                                         offset - page_off + chunk]))
            offset += chunk
            remaining -= chunk
        return b"".join(parts)

    def _write(self, offset: int, data: bytes) -> Generator[Any, Any, int]:
        """Write-behind: pages go dirty locally, pushed with a bounded
        number of bytes outstanding (the biod pool's depth)."""
        cpu = self.mount.cpu
        pc = self.mount.pagecache
        psize = pc.page_size
        written = 0
        while written < len(data):
            page_off = ((offset + written) // psize) * psize
            in_page = (offset + written) - page_off
            chunk = min(psize - in_page, len(data) - written)
            page = pc.lookup(self, page_off)
            if page is None:
                if in_page == 0 and chunk >= min(
                        psize, max(self.remote_size, offset + len(data))
                        - page_off):
                    page = yield from self._grab_page(page_off)
                    page.zero()
                    page.valid = True
                    page.unlock()
                else:
                    page = yield from self._fetch_page(page_off)
            yield from page.lock_wait()
            yield from cpu.copy("copyin", chunk)
            page.data[in_page:in_page + chunk] = data[written:written + chunk]
            page.dirty = True
            page.valid = True
            page.unlock()
            self.remote_size = max(self.remote_size,
                                   offset + written + chunk)
            written += chunk
            # Push the page write-behind, throttled.
            self.throttle.take(psize)
            proc_done = self.mount.engine.process(
                self._push_one(page_off), name="biod-write",
            )
            proc_done.add_callback(lambda _ev: None)
            yield from self.throttle.wait_ok()
        return written

    def _push_one(self, page_off: int) -> Generator[Any, Any, None]:
        try:
            yield from self.putpage(page_off,
                                    self.mount.pagecache.page_size,
                                    PutFlags(async_=True))
        finally:
            self.throttle.credit(self.mount.pagecache.page_size)

    def fsync(self) -> Generator[Any, Any, None]:
        yield from self.putpage(0, max(self.remote_size, 1), PutFlags())
        yield from self.mount.rpc("COMMIT", handle=self.handle)
