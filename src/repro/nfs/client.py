"""The NFS client: a vnode type whose backing store is across the wire.

``NfsVnode`` implements the same three entry points as UFS — rdwr,
getpage, putpage — which is the entire point of the vnode architecture:
"the main body of the kernel ... manipulate[s] a file system without
knowing the details of how it is implemented."

Pages live in the *client's* unified page cache, named by the NFS vnode,
exactly as figure 1 draws ``libc.so``.  A biod-style daemon effect is
modelled inline: sequential reads trigger one-block read-ahead RPCs, and
writes are issued write-behind with a bounded number outstanding.

The RPC layer assumes a lossy datagram wire (see ``repro.faults.netplan``)
and is hardened the way real NFS/UDP clients were:

* every call carries a **transaction id (xid)**; any reply bearing the xid
  completes the call, so a late original and a fresh retransmission cannot
  confuse each other, and a duplicated reply is ignored;
* the **retransmission timeout adapts**: per-op-class smoothed RTT and
  variance estimators (Jacobson/Karels: ``srtt + 4 * rttvar``), with
  Karn's rule — a sample is only taken when the call was answered without
  any retransmission, since an ambiguous reply could be to either copy;
* timeouts back off **exponentially with seeded jitter**, bounded by
  ``max_rto``;
* **hard vs soft mounts**: a hard mount retransmits forever (the default,
  like ``mount -o hard``); a soft mount gives up after ``retrans``
  transmissions and raises :class:`~repro.errors.RpcTimeoutError`
  (ETIMEDOUT), which the syscall layer mirrors into ``proc.errno``;
* replies that arrive **corrupted** fail their checksum and are discarded
  before any payload reaches the page cache — the retransmission timer
  then recovers, so the client cache can never serve damaged bytes.

Write-behind failures (a soft mount's major timeout, a server error) are
held in the vnode and raised from the next ``write``/``fsync``, matching
the deferred-error semantics the disk path has in ``ufs/io.py``.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Generator

from repro.core import ReadAheadState, WriteThrottle
from repro.errors import (
    FileNotFoundError_, InvalidArgumentError, ReproError, RpcTimeoutError,
)
from repro.nfs.net import Network
from repro.nfs.server import NfsServer, RPC_HEADER
from repro.sim.events import AnyOf, Event
from repro.sim.stats import StatSet
from repro.units import KB
from repro.vfs.vnode import PutFlags, RW, Vfs, Vnode, VnodeType

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu import Cpu
    from repro.sim.engine import Engine
    from repro.vm.page import Page
    from repro.vm.pagecache import PageCache

#: NFSv2 maximum transfer size.
NFS_MAXDATA = 8 * KB


class RttEstimator:
    """Jacobson/Karels adaptive retransmission timeout for one op class.

    ``srtt`` is the smoothed round-trip time (gain 1/8), ``rttvar`` the
    smoothed mean deviation (gain 1/4); the timeout is ``srtt + 4*rttvar``
    clamped to ``[min_rto, max_rto]``.  Until the first sample arrives the
    configured initial timeout is used.
    """

    def __init__(self, initial_rto: float = 1.1, min_rto: float = 0.1,
                 max_rto: float = 20.0):
        if not 0 < min_rto <= max_rto:
            raise ValueError("need 0 < min_rto <= max_rto")
        if initial_rto <= 0:
            raise ValueError("initial_rto must be positive")
        self.initial_rto = initial_rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt: "float | None" = None
        self.rttvar = 0.0
        self.samples = 0

    def observe(self, rtt: float) -> None:
        """Fold one clean (never-retransmitted) RTT sample in."""
        if rtt < 0:
            raise ValueError("rtt must be >= 0")
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            self.rttvar += (abs(self.srtt - rtt) - self.rttvar) / 4
            self.srtt += (rtt - self.srtt) / 8
        self.samples += 1

    def rto(self) -> float:
        """Current retransmission timeout."""
        if self.srtt is None:
            return self.initial_rto
        return min(self.max_rto, max(self.min_rto, self.srtt + 4 * self.rttvar))


class NfsMount(Vfs):
    """A client-side mount of a remote server (hard by default)."""

    def __init__(self, engine: "Engine", cpu: "Cpu", pagecache: "PageCache",
                 network: Network, server: NfsServer,
                 write_behind_limit: int = 64 * KB, name: str = "nfs0",
                 soft: bool = False, timeo: float = 1.1, retrans: int = 5,
                 max_rto: float = 20.0, jitter_seed: int = 0):
        super().__init__(name)
        if retrans < 1:
            raise ValueError("retrans must be >= 1")
        self.engine = engine
        self.cpu = cpu
        self.pagecache = pagecache
        self.network = network
        self.server = server
        self.write_behind_limit = write_behind_limit
        self.soft = soft
        self.timeo = timeo
        self.retrans = retrans
        self.max_rto = max_rto
        self.stats = StatSet(name)
        self._vnodes: dict[int, "NfsVnode"] = {}
        self._root: "NfsVnode | None" = None
        self._next_xid = 1
        self._estimators: dict[str, RttEstimator] = {}
        self._jitter = random.Random(jitter_seed)
        #: Transmissions the most recent completed rpc() needed (1 = clean);
        #: namespace ops use it for retransmission-aware error handling.
        self._last_transmissions = 0

    @property
    def root(self) -> "NfsVnode":
        if self._root is None:
            raise RuntimeError("call mount.activate() (a process) first")
        return self._root

    def activate(self) -> Generator[Any, Any, "NfsMount"]:
        handle, size = yield from self.rpc("LOOKUP", path="/")
        self._root = self._vnode_for(handle, size, VnodeType.DIRECTORY)
        return self

    # -- RPC plumbing ---------------------------------------------------------
    def _estimator(self, op: str) -> RttEstimator:
        """Per-op-class timers, as historical NFS clients kept them (a READ
        and a LOOKUP have very different service times)."""
        est = self._estimators.get(op)
        if est is None:
            est = RttEstimator(initial_rto=self.timeo, max_rto=self.max_rto)
            self._estimators[op] = est
        return est

    def rpc(self, op: str, request_bytes: int = RPC_HEADER,
            req: "Any | None" = None,
            **args: Any) -> Generator[Any, Any, Any]:
        """One remote procedure call, retransmitted until answered.

        Request out, handler, reply back — except any leg may drop, damage,
        duplicate, or delay the message, so the call is driven by a
        retransmission loop: send, arm the adaptive timer, race it against
        the xid's reply event.  Hard mounts loop forever; soft mounts raise
        :class:`RpcTimeoutError` after ``retrans`` transmissions.

        ``req`` is the syscall-level I/O request, when the call is made on
        behalf of one: each RPC shows up as an ``rpc`` span (op, xid, and
        final transmission count) in the request's tree.
        """
        self.stats.incr("rpcs")
        self.stats.incr(f"rpc_{op.lower()}")
        yield from self.cpu.work("nfs_client", self.cpu.costs.syscall)
        xid = self._next_xid
        self._next_xid += 1
        span = req.begin("rpc", op=op, xid=xid) if req is not None else None
        reply: Event = Event(self.engine, name=f"nfs-reply-xid{xid}")
        estimator = self._estimator(op)
        rto = estimator.rto()
        transmissions = 0
        try:
            while True:
                transmissions += 1
                if transmissions > 1:
                    self.stats.incr("retransmits")
                sent_at = self.engine.now
                attempt = self.engine.process(
                    self._transmit(xid, op, request_bytes, args, reply),
                    name=f"rpc-{op.lower()}-x{xid}t{transmissions}")
                attempt.add_callback(lambda _ev: None)
                timer = self.engine.timeout(rto)
                yield AnyOf(self.engine, [reply, timer])
                if reply.triggered:
                    timer.cancel()
                    break
                self.stats.incr("rpc_timeouts")
                if self.soft and transmissions >= self.retrans:
                    self.stats.incr("major_timeouts")
                    self._last_transmissions = transmissions
                    raise RpcTimeoutError(
                        f"NFS {op} xid={xid}: no reply after {transmissions} "
                        f"transmissions (soft mount)")
                # Bounded exponential backoff with seeded jitter.
                rto = min(self.max_rto,
                          rto * 2 * (1 + 0.1 * self._jitter.random()))
            if transmissions == 1:
                # Karn's rule: a retransmitted call's reply is ambiguous (it
                # may answer either copy), so only clean calls feed the
                # estimator.
                estimator.observe(self.engine.now - sent_at)
                self.stats.incr("rtt_samples")
            self._last_transmissions = transmissions
            status, payload = reply.value
            if status == "err":
                raise payload
            return payload
        finally:
            if req is not None:
                req.end(span, transmissions=transmissions)

    def _transmit(self, xid: int, op: str, request_bytes: int,
                  args: "dict[str, Any]", reply: Event
                  ) -> Generator[Any, Any, None]:
        """One transmission: request leg, server, reply leg."""
        d = yield from self.network.send_to_server(request_bytes)
        if not d.delivered:
            return
        if d.duplicated:
            # The copy arrives separately, a little later; the server's DRC
            # is what keeps it from re-executing anything.
            dup = self.engine.process(
                self._serve(xid, op, args, reply, corrupted=d.corrupted,
                            extra_delay=self.network.latency),
                name=f"rpc-dup-x{xid}")
            dup.add_callback(lambda _ev: None)
        yield from self._serve(xid, op, args, reply, corrupted=d.corrupted)

    def _serve(self, xid: int, op: str, args: "dict[str, Any]", reply: Event,
               corrupted: bool = False, extra_delay: float = 0.0
               ) -> Generator[Any, Any, None]:
        """Hand one arrived request datagram to the server, then carry the
        reply (if any) back over the wire and complete the xid's event."""
        if extra_delay > 0:
            yield self.engine.timeout(extra_delay)
        outcome = yield from self.server.receive(xid, op, corrupted=corrupted,
                                                **args)
        if outcome is None:
            return  # discarded: checksum, crash window, or in-progress dup
        d = yield from self.network.send_to_client(outcome.wire_bytes)
        if not d.delivered:
            return
        if d.corrupted:
            # The reply checksum fails: drop it before any byte can reach
            # the page cache; the retransmission timer recovers.
            self.stats.incr("corrupt_replies_dropped")
            return
        copies = 2 if d.duplicated else 1
        for _ in range(copies):
            if not reply.triggered:  # a duplicate/late reply is ignored
                reply.succeed((outcome.status, outcome.payload))
            else:
                self.stats.incr("duplicate_replies_ignored")

    # -- namespace ---------------------------------------------------------------
    def _vnode_for(self, handle: int, size: int,
                   vtype: VnodeType = VnodeType.REGULAR) -> "NfsVnode":
        vn = self._vnodes.get(handle)
        if vn is None:
            vn = NfsVnode(self, handle, size, vtype)
            self._vnodes[handle] = vn
        elif vn.throttle.in_flight == 0:
            # Trust the server's latest attributes — after a reboot or a
            # remote truncation the file may be *smaller* than we cached.
            # Only our own in-flight write-behind (which the server has not
            # seen yet) makes the local view more current than the reply.
            vn.remote_size = size
        return vn

    def open(self, path: str, create: bool = False
             ) -> Generator[Any, Any, "NfsVnode"]:
        """LOOKUP (or CREATE) a remote file; returns its vnode."""
        op = "CREATE" if create else "LOOKUP"
        request = RPC_HEADER + len(path)
        handle, size = yield from self.rpc(op, request_bytes=request,
                                           path=path)
        return self._vnode_for(handle, size)

    # -- the Vfs namespace surface (lets a Proc run against an NFS mount) -----
    def namei(self, path: str) -> Generator[Any, Any, "NfsVnode"]:
        return (yield from self.open(path, create=False))

    def create(self, path: str) -> Generator[Any, Any, "NfsVnode"]:
        return (yield from self.open(path, create=True))

    def unlink(self, path: str) -> Generator[Any, Any, None]:
        """REMOVE, with the classic retransmission heuristic: ENOENT on a
        call we had to retransmit is swallowed, because the likeliest cause
        is our own earlier copy succeeding and its reply getting lost (the
        server's DRC covers the common case; this covers a DRC cold-start
        after a crash)."""
        request = RPC_HEADER + len(path)
        try:
            yield from self.rpc("REMOVE", request_bytes=request, path=path)
        except FileNotFoundError_:
            if self._last_transmissions <= 1:
                raise
            self.stats.incr("remove_enoent_swallowed")


class NfsVnode(Vnode):
    """A remote file, cached page by page on the client."""

    def __init__(self, mount: NfsMount, handle: int, size: int,
                 vtype: VnodeType = VnodeType.REGULAR):
        super().__init__(vtype)
        self.mount = mount
        self.handle = handle
        self.remote_size = size
        self.readahead = ReadAheadState()
        self.throttle = WriteThrottle(mount.engine,
                                      mount.write_behind_limit,
                                      owner=f"nfs handle {handle}")
        #: Deferred write-behind failure, raised by the next write()/fsync()
        #: (the NFS flavour of ufs/io.py's partial-write error propagation).
        self.error: "ReproError | None" = None

    @property
    def size(self) -> int:
        return self.remote_size

    def _raise_deferred(self) -> None:
        """Surface (and clear) a failed asynchronous write-behind."""
        if self.error is not None:
            exc, self.error = self.error, None
            self.mount.stats.incr("deferred_errors_raised")
            raise exc

    # -- pages ------------------------------------------------------------------
    def _grab_page(self, offset: int,
                   req: "Any | None" = None) -> Generator[Any, Any, "Page"]:
        pc = self.mount.pagecache
        while True:
            page = pc.allocate(self, offset)
            if page is not None:
                return page
            yield from pc.wait_for_memory(req=req)

    def _fetch_page(self, offset: int,
                    req: "Any | None" = None) -> Generator[Any, Any, "Page"]:
        """READ one page from the server into the client cache."""
        pc = self.mount.pagecache
        page = pc.lookup(self, offset)
        if page is not None:
            if page.locked and not page.valid:
                yield from page.wait_unlocked()
                return (yield from self._fetch_page(offset, req=req))
            if page.valid:
                self.mount.stats.incr("cache_hits")
                return page
        page = yield from self._grab_page(offset, req=req)
        count = min(NFS_MAXDATA, max(0, self.remote_size - offset))
        try:
            if count == 0:
                page.zero()
            else:
                data = yield from self.mount.rpc(
                    "READ", handle=self.handle, offset=offset, count=count,
                    req=req,
                )
                page.fill(data)
        except ReproError:
            # The page never became valid; give the frame back rather than
            # leaving a locked husk that would wedge later lookups.
            page.unlock()
            pc.destroy(page)
            raise
        page.valid = True
        page.unlock()
        self.mount.stats.incr("remote_reads")
        return page

    def getpage(self, offset: int, rw: RW = RW.READ,
                req: "Any | None" = None) -> Generator[Any, Any, "Page"]:
        psize = self.mount.pagecache.page_size
        if offset % psize:
            raise InvalidArgumentError("offset not page aligned")
        # observe() updates the sequential-access state; this entry point
        # never issues read-ahead itself, so the action is not consulted.
        self.readahead.observe(offset, psize, cached=False,
                               readahead_enabled=False)
        page = yield from self._fetch_page(offset, req=req)
        page.referenced = True
        return page

    def putpage(self, offset: int, length: int, flags: PutFlags,
                req: "Any | None" = None) -> Generator[Any, Any, None]:
        """Write dirty pages back over the wire (stable on the server)."""
        pc = self.mount.pagecache
        psize = pc.page_size
        for page in pc.vnode_pages(self):
            if not (offset <= page.offset < offset + length):
                continue
            if not page.dirty or page.locked:
                continue
            page.lock()
            count = min(psize, self.remote_size - page.offset)
            if count <= 0:
                page.dirty = False
                page.unlock()
                continue
            data = bytes(page.data[:count])
            try:
                yield from self.mount.rpc(
                    "WRITE", request_bytes=RPC_HEADER + len(data),
                    handle=self.handle, offset=page.offset, data=data,
                    req=req,
                )
                page.dirty = False  # stays dirty on failure, for retry
            finally:
                page.unlock()
            self.mount.stats.incr("remote_writes")

    # -- rdwr ----------------------------------------------------------------------
    def rdwr(self, rw: RW, offset: int, payload: "bytes | int",
             req: "Any | None" = None) -> Generator[Any, Any, "bytes | int"]:
        if rw is RW.READ:
            return (yield from self._read(offset, int(payload), req=req))
        return (yield from self._write(offset, bytes(payload), req=req))  # type: ignore[arg-type]

    def _read(self, offset: int, count: int,
              req: "Any | None" = None) -> Generator[Any, Any, bytes]:
        cpu = self.mount.cpu
        psize = self.mount.pagecache.page_size
        if offset >= self.remote_size:
            return b""
        count = min(count, self.remote_size - offset)
        parts: list[bytes] = []
        remaining = count
        while remaining > 0:
            page_off = (offset // psize) * psize
            chunk = min(psize - (offset - page_off), remaining)
            action = self.readahead.observe(offset=page_off,
                                            page_size=psize, cached=False)
            # biod: asynchronous read-ahead daemons run ahead of the
            # consumer on sequential access.
            if action.sequential:
                for ahead in (1, 2, 3):
                    next_off = page_off + ahead * psize
                    if next_off >= self.remote_size:
                        break
                    if self.mount.pagecache.lookup(self, next_off) is None:
                        proc = self.mount.engine.process(
                            self._fetch_ahead(next_off), name="biod-read")
                        proc.add_callback(lambda _ev: None)
            page = yield from self._fetch_page(page_off, req=req)
            yield from cpu.copy("copyout", chunk)
            parts.append(bytes(page.data[offset - page_off:
                                         offset - page_off + chunk]))
            offset += chunk
            remaining -= chunk
        return b"".join(parts)

    def _fetch_ahead(self, offset: int) -> Generator[Any, Any, None]:
        """A biod read-ahead: purely opportunistic, so a soft-mount timeout
        here is dropped — the consumer's own synchronous fetch will retry
        and surface any real error."""
        try:
            yield from self._fetch_page(offset)
        except ReproError:
            self.mount.stats.incr("readahead_errors_dropped")

    def _write(self, offset: int, data: bytes,
               req: "Any | None" = None) -> Generator[Any, Any, int]:
        """Write-behind: pages go dirty locally, pushed with a bounded
        number of bytes outstanding (the biod pool's depth).

        The detached biod pushes do *not* carry ``req`` — they outlive the
        syscall and would race on the request's span stack; only the
        synchronous parts of the write (page fetches, throttle waits) are
        attributed.
        """
        self._raise_deferred()
        cpu = self.mount.cpu
        pc = self.mount.pagecache
        psize = pc.page_size
        written = 0
        while written < len(data):
            page_off = ((offset + written) // psize) * psize
            in_page = (offset + written) - page_off
            chunk = min(psize - in_page, len(data) - written)
            page = pc.lookup(self, page_off)
            if page is None:
                if in_page == 0 and chunk >= min(
                        psize, max(self.remote_size, offset + len(data))
                        - page_off):
                    page = yield from self._grab_page(page_off, req=req)
                    page.zero()
                    page.valid = True
                    page.unlock()
                else:
                    page = yield from self._fetch_page(page_off, req=req)
            yield from page.lock_wait()
            yield from cpu.copy("copyin", chunk)
            page.data[in_page:in_page + chunk] = data[written:written + chunk]
            page.dirty = True
            page.valid = True
            page.unlock()
            self.remote_size = max(self.remote_size,
                                   offset + written + chunk)
            written += chunk
            # Push the page write-behind, throttled.
            self.throttle.take(psize)
            proc_done = self.mount.engine.process(
                self._push_one(page_off), name="biod-write",
            )
            proc_done.add_callback(lambda _ev: None)
            span = None
            if req is not None and self.throttle.value < 0:
                span = req.begin("throttle_wait", over_by=-self.throttle.value)
            try:
                yield from self.throttle.wait_ok()
            finally:
                if req is not None:
                    req.end(span)
        return written

    def _push_one(self, page_off: int) -> Generator[Any, Any, None]:
        try:
            yield from self.putpage(page_off,
                                    self.mount.pagecache.page_size,
                                    PutFlags(async_=True))
        except ReproError as exc:
            # Remember the failure for the next write()/fsync(); the page
            # stays dirty for a later retry.
            self.error = exc
            self.mount.stats.incr("write_behind_errors")
        finally:
            # Whatever happened, the throttle slot must come back — a stuck
            # slot would wedge this file at the limit forever.
            self.throttle.credit(self.mount.pagecache.page_size, source=self)

    def fsync(self, req: "Any | None" = None) -> Generator[Any, Any, None]:
        self._raise_deferred()
        # Let in-flight write-behind drain first: their failures belong to
        # this fsync, and their pages may need the synchronous pass below.
        yield from self.throttle.drain()
        self._raise_deferred()
        yield from self.putpage(0, max(self.remote_size, 1), PutFlags(),
                                req=req)
        yield from self.mount.rpc("COMMIT", handle=self.handle, req=req)
