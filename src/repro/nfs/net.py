"""A simulated local-area network (1991 flavour).

One shared medium per direction, modelled as a FIFO resource: a transfer
occupies its direction for ``size / bandwidth`` seconds after a fixed
per-message latency (interface + protocol stack).  10 Mbit/s Ethernet
moves ~1.2 MB/s — notably *slower* than the paper's disk after
clustering, which is exactly the regime the NFS benchmark explores.

The wire can be made to misbehave: an attached
:class:`~repro.faults.netplan.NetFaultPlan` is consulted once per message,
and the resulting :class:`Delivery` tells the RPC layer whether the
message arrived, arrived damaged, arrived twice, or was held (reordered).
The network itself stays dumb — drops are simply never seen again, and it
is the client's retransmission timer and the server's duplicate-request
cache (``repro.nfs.client`` / ``repro.nfs.server``) that turn this lossy
datagram service back into a usable RPC transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

from repro.sim.resources import Resource
from repro.sim.stats import StatSet
from repro.units import MS

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.netplan import NetFaultPlan
    from repro.sim.engine import Engine

#: 10 Mbit/s Ethernet, as bytes/second.
ETHERNET_10MBIT = 10_000_000 / 8


@dataclass(frozen=True)
class Delivery:
    """How one message fared on the wire.

    ``delivered`` is False for a drop (including partition windows);
    ``corrupted`` means the bytes arrived but fail their checksum;
    ``duplicated`` means the receiver gets a second copy; ``delayed`` is
    any extra hold the message suffered after leaving the wire (the
    mechanism behind reordering and latency spikes).
    """

    delivered: bool = True
    corrupted: bool = False
    duplicated: bool = False
    delayed: float = 0.0


#: The fault-free outcome, shared to avoid per-message allocation.
_CLEAN = Delivery()


class Network:
    """A bidirectional link between one client and one server."""

    def __init__(self, engine: "Engine", bandwidth: float = ETHERNET_10MBIT,
                 latency: float = 1.0 * MS,
                 fault_plan: "NetFaultPlan | None" = None):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.engine = engine
        self.bandwidth = bandwidth
        self.latency = latency
        self.fault_plan = fault_plan
        self._to_server = Resource(engine, capacity=1, name="net.up")
        self._to_client = Resource(engine, capacity=1, name="net.down")
        self.stats = StatSet("network")

    def _transfer(self, direction: Resource, direction_name: str, nbytes: int
                  ) -> Generator[Any, Any, Delivery]:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        wire_time = nbytes / self.bandwidth
        yield from direction.use(wire_time)
        if self.latency > 0:
            yield self.engine.timeout(self.latency)
        self.stats.incr("messages")
        self.stats.incr("bytes", nbytes)
        plan = self.fault_plan
        if plan is None:
            return _CLEAN
        decision = plan.decide(direction_name, self.engine.now)
        if decision is None:
            return _CLEAN
        if decision.drop:
            self.stats.incr("dropped")
            return Delivery(delivered=False)
        if decision.delay > 0:
            # Held after releasing the wire, so later sends overtake it.
            self.stats.incr("delayed")
            yield self.engine.timeout(decision.delay)
        if decision.corrupt:
            self.stats.incr("corrupted")
        if decision.duplicate:
            self.stats.incr("duplicated")
        return Delivery(corrupted=decision.corrupt,
                        duplicated=decision.duplicate,
                        delayed=decision.delay)

    def send_to_server(self, nbytes: int) -> Generator[Any, Any, Delivery]:
        """Occupy the client->server direction for ``nbytes``."""
        return (yield from self._transfer(self._to_server, "up", nbytes))

    def send_to_client(self, nbytes: int) -> Generator[Any, Any, Delivery]:
        """Occupy the server->client direction for ``nbytes``."""
        return (yield from self._transfer(self._to_client, "down", nbytes))

    def utilization(self) -> float:
        """Busier direction's utilisation since t=0."""
        return max(self._to_server.utilization(),
                   self._to_client.utilization())
