"""A simulated local-area network (1991 flavour).

One shared medium per direction, modelled as a FIFO resource: a transfer
occupies its direction for ``size / bandwidth`` seconds after a fixed
per-message latency (interface + protocol stack).  10 Mbit/s Ethernet
moves ~1.2 MB/s — notably *slower* than the paper's disk after
clustering, which is exactly the regime the NFS benchmark explores.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim.resources import Resource
from repro.sim.stats import StatSet
from repro.units import MS

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

#: 10 Mbit/s Ethernet, as bytes/second.
ETHERNET_10MBIT = 10_000_000 / 8


class Network:
    """A bidirectional link between one client and one server."""

    def __init__(self, engine: "Engine", bandwidth: float = ETHERNET_10MBIT,
                 latency: float = 1.0 * MS):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.engine = engine
        self.bandwidth = bandwidth
        self.latency = latency
        self._to_server = Resource(engine, capacity=1, name="net.up")
        self._to_client = Resource(engine, capacity=1, name="net.down")
        self.stats = StatSet("network")

    def _transfer(self, direction: Resource, nbytes: int
                  ) -> Generator[Any, Any, None]:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        wire_time = nbytes / self.bandwidth
        yield from direction.use(wire_time)
        if self.latency > 0:
            yield self.engine.timeout(self.latency)
        self.stats.incr("messages")
        self.stats.incr("bytes", nbytes)

    def send_to_server(self, nbytes: int) -> Generator[Any, Any, None]:
        """Occupy the client->server direction for ``nbytes``."""
        yield from self._transfer(self._to_server, nbytes)

    def send_to_client(self, nbytes: int) -> Generator[Any, Any, None]:
        """Occupy the server->client direction for ``nbytes``."""
        yield from self._transfer(self._to_client, nbytes)

    def utilization(self) -> float:
        """Busier direction's utilisation since t=0."""
        return max(self._to_server.utilization(),
                   self._to_client.utilization())
