"""Convenience builder: one simulated world with a client and a server."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.kernel.config import SystemConfig
from repro.kernel.system import System
from repro.nfs.client import NfsMount
from repro.nfs.net import ETHERNET_10MBIT, Network
from repro.nfs.server import NfsServer
from repro.units import MS

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.netplan import NetFaultPlan


def build_world(server_config: SystemConfig | None = None,
                client_config: SystemConfig | None = None,
                bandwidth: float = ETHERNET_10MBIT,
                latency: float = 1.0 * MS,
                nfsd_threads: int = 2,
                fault_plan: "NetFaultPlan | None" = None,
                soft: bool = False,
                timeo: float = 1.1,
                retrans: int = 5,
                drc_size: int = 256):
    """Boot a server machine (with a UFS) and a diskless-ish client machine
    on one engine, joined by a network; returns
    ``(client_system, server_system, nfs_mount)``.

    ``fault_plan`` (a :class:`~repro.faults.netplan.NetFaultPlan`) makes the
    wire lossy and schedules server crash windows; ``soft``/``timeo``/
    ``retrans`` pick the client's mount semantics and ``drc_size`` the
    server's duplicate-request cache capacity.
    """
    server_system = System.booted(
        server_config if server_config is not None else SystemConfig.config_a()
    )
    client_system = System(
        client_config if client_config is not None else SystemConfig(name="client"),
        engine=server_system.engine,
    )
    network = Network(server_system.engine, bandwidth=bandwidth,
                      latency=latency, fault_plan=fault_plan)
    server = NfsServer(server_system.engine, server_system.mount,
                       nfsd_threads=nfsd_threads, drc_size=drc_size,
                       fault_plan=fault_plan)
    mount = NfsMount(server_system.engine, client_system.cpu,
                     client_system.pagecache, network, server,
                     soft=soft, timeo=timeo, retrans=retrans)
    client_system.run(mount.activate(), name="nfs-mount")
    return client_system, server_system, mount
