"""Convenience builder: one simulated world with a client and a server."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.kernel.config import SystemConfig
from repro.kernel.system import System
from repro.nfs.client import NfsMount
from repro.nfs.net import ETHERNET_10MBIT, Network
from repro.nfs.server import NfsServer
from repro.units import MS


def build_world(server_config: SystemConfig | None = None,
                client_config: SystemConfig | None = None,
                bandwidth: float = ETHERNET_10MBIT,
                latency: float = 1.0 * MS,
                nfsd_threads: int = 2):
    """Boot a server machine (with a UFS) and a diskless-ish client machine
    on one engine, joined by a network; returns
    ``(client_system, server_system, nfs_mount)``.
    """
    server_system = System.booted(
        server_config if server_config is not None else SystemConfig.config_a()
    )
    client_system = System(
        client_config if client_config is not None else SystemConfig(name="client"),
        engine=server_system.engine,
    )
    network = Network(server_system.engine, bandwidth=bandwidth,
                      latency=latency)
    server = NfsServer(server_system.engine, server_system.mount,
                       nfsd_threads=nfsd_threads)
    mount = NfsMount(server_system.engine, client_system.cpu,
                     client_system.pagecache, network, server)
    client_system.run(mount.activate(), name="nfs-mount")
    return client_system, server_system, mount
