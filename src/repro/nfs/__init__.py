"""A minimal NFS: the remote file system in the paper's figure 1.

The paper's VM walkthrough maps ``libc.so`` from "a remote NFS file
system" next to a local UFS file — the point of the vnode architecture
being that the kernel drives both through the same interface.  This
package supplies that second, remote file system type:

* :class:`~repro.nfs.net.Network` — a half-duplex-per-direction 1991
  Ethernet (10 Mbit/s, fixed per-RPC latency);
* :class:`~repro.nfs.server.NfsServer` — stateless v2-style handlers
  (LOOKUP/GETATTR/READ/WRITE/CREATE/COMMIT) over a server-side
  :class:`~repro.ufs.UfsMount` with its own CPU and disk;
* :class:`~repro.nfs.client.NfsMount` / ``NfsVnode`` — a client file
  system whose pages live in the *client's* unified page cache, with
  biod-style read-ahead and write-behind.

Because the server runs a real UFS, the paper's clustering operates on
the server disk underneath NFS — remote users are among the "all users of
the file system [who] benefit", up to the point the wire saturates (which
the benchmark shows).
"""

from repro.nfs.client import NfsMount, NfsVnode, RttEstimator
from repro.nfs.net import Delivery, Network
from repro.nfs.server import NfsServer
from repro.nfs.world import build_world

__all__ = ["Delivery", "Network", "NfsMount", "NfsServer", "NfsVnode",
           "RttEstimator", "build_world"]
