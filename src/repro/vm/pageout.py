"""The pageout daemon: the basic two-handed clock.

"The first hand of the clock clears reference bits and the second hand frees
the page if the reference bit is still clear.  The hands move, in unison,
only when the amount of free memory drops below a low water mark."

The daemon is a simulation process.  It charges CPU for every page it
examines and for every wakeup, which is how the paper's page-thrashing
observation shows up in the model: during large sequential I/O without
free-behind, the daemon and the I/O process fight for the CPU, and the
I/O pages it frees are exactly the ones that were just read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

from repro.sim.events import AnyOf
from repro.sim.stats import StatSet
from repro.vfs.vnode import PutFlags

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu import Cpu
    from repro.sim.engine import Engine
    from repro.vm.pagecache import PageCache


@dataclass(frozen=True)
class PageoutParams:
    """Clock tuning, in pages (fractions of total memory by default)."""

    #: Run the clock when freemem drops below this many pages.
    lotsfree: int
    #: Distance between the front (clearing) and back (freeing) hands.
    handspread: int
    #: Pages examined per burst before letting other processes run.
    scan_batch: int = 64
    #: Pause between bursts (lets the I/O process make progress).
    breath: float = 0.002
    #: Once woken, keep freeing until freemem >= lotsfree + hysteresis,
    #: so each wakeup does a batch of work rather than one page's worth.
    hysteresis: int = 64

    @classmethod
    def for_memory(cls, total_pages: int) -> "PageoutParams":
        """SunOS-flavoured defaults: lotsfree = 1/16 of memory."""
        return cls(
            lotsfree=max(4, total_pages // 16),
            handspread=max(8, total_pages // 4),
        )


class PageoutDaemon:
    """The two-handed clock over all page frames."""

    def __init__(self, engine: "Engine", cache: "PageCache", cpu: "Cpu",
                 params: PageoutParams | None = None,
                 registry: "Any | None" = None):
        self.engine = engine
        self.cache = cache
        self.cpu = cpu
        #: Optional RequestRegistry: each dirty-page push the daemon starts
        #: is accounted as a "pageout" request (the kernel's own I/O shows
        #: up in the same per-kind latency report as user syscalls).
        self.registry = registry
        self.params = params if params is not None else PageoutParams.for_memory(
            cache.total_pages
        )
        if self.params.handspread >= cache.total_pages:
            raise ValueError("handspread must be smaller than memory")
        self.stats = StatSet("pageout")
        self._front = 0  # front hand frame index
        self.cache.low_water = self.params.lotsfree
        self._proc = engine.process(self._run(), name="pageout")

    # -- the clock ------------------------------------------------------------
    @property
    def needs_to_run(self) -> bool:
        return self.cache.freemem < self.params.lotsfree

    @property
    def _target_reached(self) -> bool:
        return self.cache.freemem >= self.params.lotsfree + self.params.hysteresis

    def _run(self) -> Generator[Any, Any, None]:
        cache = self.cache
        while True:
            if not self.needs_to_run:
                yield cache.low_memory.wait()
                continue
            self.stats.incr("wakeups")
            yield from self.cpu.work("pagedaemon", self.cpu.costs.pagedaemon_wakeup)
            while not self._target_reached:
                progress = yield from self._scan_batch()
                if self.params.breath > 0:
                    yield self.engine.timeout(self.params.breath)
                if not progress:
                    # Nothing freeable this revolution segment: wait for
                    # in-flight writebacks or new frees rather than spin.
                    self.stats.incr("stalls")
                    yield AnyOf(self.engine, [
                        cache.memory_wanted.wait(),
                        self.engine.timeout(0.010),
                    ])

    def _scan_batch(self) -> Generator[Any, Any, bool]:
        """Advance both hands ``scan_batch`` frames; True if anything freed
        or queued for writeback."""
        cache = self.cache
        frames = cache.frames
        n = len(frames)
        progress = False
        for _ in range(self.params.scan_batch):
            front = frames[self._front]
            back = frames[(self._front - self.params.handspread) % n]
            self._front = (self._front + 1) % n
            self.stats.incr("examined", 2)
            yield from self.cpu.work(
                "pagedaemon", 2 * self.cpu.costs.pagedaemon_scan
            )
            # Front hand: clear the reference bit.
            if not front.free and not front.locked:
                front.referenced = False
            # Back hand: free if still unreferenced.
            if back.free or back.locked or not back.named or back.referenced:
                continue
            if back.dirty:
                progress = True
                self.stats.incr("pushed_dirty")
                flags = PutFlags(async_=True, free=True)
                if self.registry is None:
                    # No registry (unit-test daemons over bare fakes): plain
                    # call, no request accounting.
                    yield from back.vnode.putpage(
                        back.offset, cache.page_size, flags
                    )
                else:
                    req = self.registry.start("pageout", origin="pagedaemon",
                                              offset=back.offset)
                    try:
                        yield from back.vnode.putpage(
                            back.offset, cache.page_size, flags, req=req
                        )
                    except BaseException as exc:
                        req.complete(error=exc)
                        raise
                    req.complete()
            else:
                progress = True
                self.stats.incr("freed")
                cache.free(back)
            if self._target_reached:
                break
        return progress
