"""The SunOS-style virtual memory system.

The paper's VM background section describes the machinery reproduced here:

* a **unified page cache**: every page is named ``<vnode, offset>``; there is
  no separate buffer cache, so "all of memory may be an I/O cache";
* page frames are recycled from a **free list** whose pages keep their
  identity until reused, so a lookup can *reclaim* a free page (the cache
  effect clustering must not destroy);
* the **pageout daemon** implements the two-handed clock: the front hand
  clears reference bits, the back hand frees (or writes back) pages whose
  bit is still clear, running only when free memory drops below ``lotsfree``.

The page-thrashing problem in the paper ("pages were entering the system at
a higher rate than they could be freed") and its free-behind fix are
interactions between this package and :mod:`repro.ufs`.
"""

from repro.vm.addrspace import AddressSpace, Segment, SegmentationFault
from repro.vm.page import Page
from repro.vm.pagecache import PageCache
from repro.vm.pageout import PageoutDaemon, PageoutParams

__all__ = [
    "AddressSpace",
    "Page",
    "PageCache",
    "PageoutDaemon",
    "PageoutParams",
    "Segment",
    "SegmentationFault",
]
