"""Address spaces and segments: the paper's figure 1 fault path.

"The address space, associated with a process, is made up of a collection
of segments each of which refers to a portion of a file (vnode)...  The
fault is resolved by traversing the object hierarchy and invoking the
fault handlers for each object type": address space -> segment ->
``getpage`` of the associated file system.

This is the mmap interface the paper's figure 12 benchmark uses.  Mapped
*writes* exercise the UFS_HOLE discipline: a page with no backing store is
mapped read-only, the write fault gives UFS the chance to allocate the
block, and only then does the store proceed — "if the system did not
enforce these rules, a write may appear to succeed but later will find
that there is no more space in the file system."
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import InvalidArgumentError
from repro.vfs.vnode import PutFlags, RW

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu import Cpu
    from repro.sim.engine import Engine
    from repro.vfs.vnode import Vnode
    from repro.vm.page import Page


class SegmentationFault(Exception):
    """An access outside every segment, or a store to a read-only mapping."""


class Segment:
    """One mapping: [base, base+length) of an address space onto a vnode."""

    def __init__(self, base: int, length: int, vnode: "Vnode",
                 vnode_offset: int, writable: bool):
        self.base = base
        self.length = length
        self.vnode = vnode
        self.vnode_offset = vnode_offset
        self.writable = writable
        self.faults = 0

    @property
    def end(self) -> int:
        return self.base + self.length

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def vnode_offset_of(self, addr: int, page_size: int) -> int:
        """The page-aligned vnode offset backing ``addr``."""
        rel = addr - self.base
        return self.vnode_offset + (rel // page_size) * page_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "rw" if self.writable else "ro"
        return (f"<Segment [{self.base:#x}, {self.end:#x}) {mode} "
                f"-> {self.vnode!r}+{self.vnode_offset}>")


class AddressSpace:
    """A process's collection of segments, with the fault dispatcher."""

    #: Where file mappings start (an arbitrary userland-looking base).
    MAP_BASE = 0x1000_0000

    def __init__(self, engine: "Engine", cpu: "Cpu", page_size: int):
        self.engine = engine
        self.cpu = cpu
        self.page_size = page_size
        self.segments: list[Segment] = []

    # -- mapping management ---------------------------------------------------
    def map(self, vnode: "Vnode", length: int, vnode_offset: int = 0,
            writable: bool = False) -> Segment:
        """Map ``length`` bytes of ``vnode`` at the next free address."""
        if length <= 0:
            raise InvalidArgumentError("mapping length must be positive")
        if vnode_offset % self.page_size:
            raise InvalidArgumentError("mapping offset must be page aligned")
        if vnode_offset + length > vnode.size:
            raise InvalidArgumentError("mapping extends past end of file")
        base = max((seg.end for seg in self.segments), default=self.MAP_BASE)
        base = -(-base // self.page_size) * self.page_size
        segment = Segment(base, length, vnode, vnode_offset, writable)
        self.segments.append(segment)
        return segment

    def unmap(self, segment: Segment) -> Generator[Any, Any, None]:
        """Remove a mapping, flushing mapped writes (msync semantics)."""
        if segment not in self.segments:
            raise InvalidArgumentError("segment not mapped")
        if segment.writable:
            yield from self.msync(segment)
        self.segments.remove(segment)

    def msync(self, segment: Segment,
              req: "Any | None" = None) -> Generator[Any, Any, None]:
        """Write the segment's dirty pages back synchronously."""
        yield from segment.vnode.putpage(
            segment.vnode_offset, segment.length, PutFlags(), req=req
        )

    def find(self, addr: int) -> Segment:
        for segment in self.segments:
            if segment.contains(addr):
                return segment
        raise SegmentationFault(f"address {addr:#x} not mapped")

    # -- the fault path -----------------------------------------------------------
    def fault(self, addr: int, rw: RW,
              req: "Any | None" = None) -> Generator[Any, Any, "Page"]:
        """Resolve one fault: find the segment, call the file system."""
        segment = self.find(addr)
        if rw is RW.WRITE and not segment.writable:
            raise SegmentationFault(
                f"store to read-only mapping at {addr:#x}"
            )
        segment.faults += 1
        yield from self.cpu.work("fault", self.cpu.costs.fault)
        offset = segment.vnode_offset_of(addr, self.page_size)
        page = yield from segment.vnode.getpage(offset, rw, req=req)
        if rw is RW.WRITE:
            # The UFS_HOLE rule: a page without backing store is read-only;
            # the write fault is the file system's chance to allocate.
            allocate = getattr(segment.vnode, "allocate_backing", None)
            if allocate is not None:
                yield from allocate(offset)
            page.dirty = True
        page.referenced = True
        return page

    # -- simulated loads and stores --------------------------------------------------
    def read(self, addr: int, count: int,
             req: "Any | None" = None) -> Generator[Any, Any, bytes]:
        """A load of ``count`` bytes (faulting pages in as needed)."""
        if count <= 0:
            raise InvalidArgumentError("count must be positive")
        parts: list[bytes] = []
        remaining = count
        while remaining > 0:
            segment = self.find(addr)
            page = yield from self.fault(addr, RW.READ, req=req)
            offset = segment.vnode_offset_of(addr, self.page_size)
            in_page = (segment.vnode_offset + (addr - segment.base)) - offset
            take = min(self.page_size - in_page, remaining,
                       segment.end - addr)
            yield from self.cpu.copy("copyout", take)
            parts.append(bytes(page.data[in_page:in_page + take]))
            addr += take
            remaining -= take
        return b"".join(parts)

    def write(self, addr: int, data: bytes,
              req: "Any | None" = None) -> Generator[Any, Any, int]:
        """A store of ``data`` (write-faulting pages as needed)."""
        if not data:
            return 0
        written = 0
        while written < len(data):
            segment = self.find(addr)
            page = yield from self.fault(addr, RW.WRITE, req=req)
            offset = segment.vnode_offset_of(addr, self.page_size)
            in_page = (segment.vnode_offset + (addr - segment.base)) - offset
            take = min(self.page_size - in_page, len(data) - written,
                       segment.end - addr)
            yield from self.cpu.copy("copyin", take)
            page.data[in_page:in_page + take] = data[written:written + take]
            addr += take
            written += take
        return written
