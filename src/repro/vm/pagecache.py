"""The unified page cache: a fixed pool of frames, a name hash, a free list.

Allocation discipline (mirrors SunOS):

* ``lookup`` finds a named page; if it is on the free list it is *reclaimed*
  (cache hit on a free page — the caching effect the paper is careful to
  preserve for small files).
* ``allocate`` takes the oldest free frame, stripping its old identity if it
  had one.  When the free list is empty the caller must wait for memory
  (``wait_for_memory``), which nudges the pageout daemon.
* ``free`` puts a page at the tail of the free list *keeping its name*;
  ``free_front`` puts it at the head (used by free-behind: sequential I/O
  pages are unlikely to be reused, so they are the best candidates for
  immediate recycling).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Generator

from repro.sim.events import Event
from repro.sim.resources import Signal
from repro.sim.stats import StatSet, TimeWeighted
from repro.units import KB
from repro.vm.page import Page

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine
    from repro.vfs.vnode import Vnode


class PageCache:
    """All of physical memory, managed as a cache of vnode pages."""

    def __init__(self, engine: "Engine", memory_bytes: int,
                 page_size: int = 8 * KB, reserved_pages: int = 0):
        if memory_bytes <= 0 or page_size <= 0:
            raise ValueError("memory and page size must be positive")
        if memory_bytes % page_size != 0:
            raise ValueError("memory size must be a multiple of the page size")
        self.engine = engine
        self.page_size = page_size
        total = memory_bytes // page_size
        if reserved_pages < 0 or reserved_pages >= total:
            raise ValueError("reserved_pages must be in [0, total)")
        #: Frames usable by the page cache (kernel + process memory removed).
        self.total_pages = total - reserved_pages
        self.frames: list[Page] = [
            Page(engine, frame, page_size) for frame in range(self.total_pages)
        ]
        self._hash: dict[tuple[int, int], Page] = {}
        # Free list keyed by frame number; ordered oldest-freed first.
        self._freelist: OrderedDict[int, Page] = OrderedDict(
            (p.frame, p) for p in self.frames
        )
        self.memory_wanted = Signal(engine, name="memwait")
        self.low_memory = Signal(engine, name="lowmem")
        #: Free-page threshold below which low_memory fires (the pageout
        #: daemon sets this to its lotsfree).
        self.low_water = 0
        self.stats = StatSet("pagecache")
        self.freemem_track = TimeWeighted(engine, self.total_pages)

    def register_metrics(self, registry) -> None:
        """Report the VM instruments into a system MetricsRegistry."""
        registry.register("vm.pagecache", self.stats)
        registry.register("vm.freemem", self.freemem_track)

    # -- inspection -----------------------------------------------------------
    @property
    def freemem(self) -> int:
        """Number of frames on the free list."""
        return len(self._freelist)

    @property
    def named_pages(self) -> int:
        """Number of frames holding a cached vnode page."""
        return len(self._hash)

    def _key(self, vnode: "Vnode", offset: int) -> tuple[int, int]:
        return (vnode.vnode_id, offset)

    # -- lookup / reclaim --------------------------------------------------------
    def lookup(self, vnode: "Vnode", offset: int) -> Page | None:
        """Find the page caching ``<vnode, offset>``, reclaiming if free."""
        page = self._hash.get(self._key(vnode, offset))
        if page is None:
            self.stats.incr("misses")
            return None
        if page.free:
            # Reclaim from the free list: the frame still held our data.
            del self._freelist[page.frame]
            page.free = False
            self.freemem_track.set(self.freemem)
            self.stats.incr("reclaims")
            if self.freemem < self.low_water:
                self.low_memory.fire()
        self.stats.incr("hits")
        return page

    # -- allocation -----------------------------------------------------------------
    def allocate(self, vnode: "Vnode", offset: int) -> Page | None:
        """Take a free frame and name it ``<vnode, offset>``, locked.

        Returns None when no memory is free — the caller should
        ``yield from wait_for_memory()`` and retry.  The named page must not
        already be cached (callers look up first).
        """
        key = self._key(vnode, offset)
        if key in self._hash:
            raise RuntimeError(f"page {key} already cached; lookup() first")
        if not self._freelist:
            self.stats.incr("allocation_shortfalls")
            return None
        _, page = self._freelist.popitem(last=False)
        page.free = False
        if page.named:
            # Steal the oldest free frame from whatever it used to cache.
            del self._hash[self._key(page.vnode, page.offset)]
            page.unname()
            self.stats.incr("identity_steals")
        page.name(vnode, offset)
        page.lock()
        self._hash[key] = page
        self.stats.incr("allocations")
        self.freemem_track.set(self.freemem)
        if self.freemem < self.low_water:
            self.low_memory.fire()
        return page

    def wait_for_memory(self, req: "Any | None" = None
                        ) -> Generator[Event, Any, None]:
        """Block until a frame is freed; pokes the low-memory signal.

        ``req`` is the optional I/O request on whose behalf we are waiting;
        when tracing, the stall shows up as a ``mem_wait`` span in its tree.
        """
        self.stats.incr("memory_waits")
        span = req.begin("mem_wait", freemem=self.freemem) if req is not None else None
        try:
            self.low_memory.fire()
            yield self.memory_wanted.wait()
        finally:
            # The wait can be torn down by an interrupt or a failing event;
            # the span must close on every exit or the request leaks it.
            if req is not None:
                req.end(span)

    # -- freeing ----------------------------------------------------------------------
    def free(self, page: Page, front: bool = False) -> None:
        """Return a frame to the free list (keeping its identity).

        ``front=True`` queues it for immediate reuse (free-behind), because
        sequentially-read pages are the least likely to be referenced again.
        """
        if page.free:
            raise RuntimeError(f"frame {page.frame} already free")
        if page.locked:
            raise RuntimeError(f"cannot free locked frame {page.frame}")
        if page.dirty:
            raise RuntimeError(f"cannot free dirty frame {page.frame}; clean it first")
        page.free = True
        page.referenced = False
        if front:
            self._freelist[page.frame] = page
            self._freelist.move_to_end(page.frame, last=False)
            self.stats.incr("freed_front")
        else:
            self._freelist[page.frame] = page
            self.stats.incr("freed")
        self.freemem_track.set(self.freemem)
        self.memory_wanted.fire()

    def destroy(self, page: Page) -> None:
        """Strip identity and free the frame (file truncation/unlink)."""
        if page.locked:
            raise RuntimeError(f"cannot destroy locked frame {page.frame}")
        if page.named:
            self._hash.pop(self._key(page.vnode, page.offset), None)
        was_free = page.free
        page.unname()
        page.dirty = False
        if not was_free:
            page.free = True
            self._freelist[page.frame] = page
            self.freemem_track.set(self.freemem)
            self.memory_wanted.fire()
        self.stats.incr("destroyed")

    # -- per-vnode operations -------------------------------------------------------------
    def vnode_pages(self, vnode: "Vnode") -> list[Page]:
        """All cached pages of ``vnode``, sorted by offset."""
        vid = vnode.vnode_id
        pages = [p for (v, _), p in self._hash.items() if v == vid]
        return sorted(pages, key=lambda p: p.offset)

    def vnode_invalidate(self, vnode: "Vnode") -> int:
        """Destroy every (unlocked) page of a vnode; returns count destroyed.

        Used on unlink — the paper notes removing backing store is one of
        only two ways pages leave the system.
        """
        count = 0
        for page in self.vnode_pages(vnode):
            if page.locked:
                raise RuntimeError("invalidate with locked pages in flight")
            self.destroy(page)
            count += 1
        return count

    def dirty_pages(self, vnode: "Vnode" | None = None) -> list[Page]:
        """Dirty pages (of one vnode, or all), sorted by (vnode, offset)."""
        pages = [
            p for p in self._hash.values()
            if p.dirty and (vnode is None or p.vnode is vnode)
        ]
        return sorted(pages, key=lambda p: (p.vnode.vnode_id, p.offset))
