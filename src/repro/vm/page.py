"""A physical page frame.

Frames are created once (machine memory / page size of them) and recycled
forever.  A frame may be *named* by a ``<vnode, offset>`` identity, hold real
data bytes, and carry the usual flags: valid, dirty, locked, referenced, and
free.  A page can be simultaneously free and named — that is what makes the
free list a cache (reclaim) rather than a garbage pile.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine
    from repro.vfs.vnode import Vnode


class Page:
    """One page frame."""

    __slots__ = (
        "engine", "frame", "size", "data", "vnode", "offset",
        "valid", "dirty", "locked", "referenced", "free",
        "_lock_waiters",
    )

    def __init__(self, engine: "Engine", frame: int, size: int):
        self.engine = engine
        self.frame = frame
        self.size = size
        self.data = bytearray(size)
        self.vnode: "Vnode | None" = None
        self.offset = -1
        self.valid = False
        self.dirty = False
        self.locked = False
        self.referenced = False
        self.free = True
        self._lock_waiters: list[Event] = []

    # -- identity ----------------------------------------------------------
    @property
    def named(self) -> bool:
        """True if the frame currently caches some vnode page."""
        return self.vnode is not None

    def name(self, vnode: "Vnode", offset: int) -> None:
        """Give the frame a new identity (must be anonymous)."""
        if self.named:
            raise RuntimeError(f"frame {self.frame} already named")
        if offset < 0 or offset % self.size != 0:
            raise ValueError(f"offset {offset} not page aligned")
        self.vnode = vnode
        self.offset = offset

    def unname(self) -> None:
        """Strip identity and contents (frame becomes anonymous)."""
        self.vnode = None
        self.offset = -1
        self.valid = False
        self.dirty = False
        self.referenced = False

    # -- locking ------------------------------------------------------------
    def lock(self) -> None:
        """Claim the page for I/O or mutation (must be unlocked)."""
        if self.locked:
            raise RuntimeError(f"page frame {self.frame} already locked")
        self.locked = True

    def unlock(self) -> None:
        """Release the page and wake anyone waiting for it."""
        if not self.locked:
            raise RuntimeError(f"page frame {self.frame} not locked")
        self.locked = False
        waiters, self._lock_waiters = self._lock_waiters, []
        for ev in waiters:
            ev.succeed(self)

    def lock_wait(self) -> Generator[Event, Any, None]:
        """Wait until the page is unlocked, then lock it.  ``yield from``."""
        while self.locked:
            ev = Event(self.engine, name=f"page{self.frame}.lockwait")
            self._lock_waiters.append(ev)
            yield ev
        self.lock()

    def wait_unlocked(self) -> Generator[Event, Any, None]:
        """Wait until the page is unlocked (without taking the lock)."""
        while self.locked:
            ev = Event(self.engine, name=f"page{self.frame}.unlockwait")
            self._lock_waiters.append(ev)
            yield ev

    # -- data plane -----------------------------------------------------------
    def fill(self, data: bytes) -> None:
        """Install page contents (pads short data with zeros)."""
        if len(data) > self.size:
            raise ValueError(f"data length {len(data)} exceeds page size {self.size}")
        self.data[: len(data)] = data
        if len(data) < self.size:
            self.data[len(data):] = bytes(self.size - len(data))

    def zero(self) -> None:
        """Zero-fill (used for holes in files)."""
        self.data[:] = bytes(self.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            ch
            for ch, on in (
                ("V", self.valid), ("D", self.dirty), ("L", self.locked),
                ("R", self.referenced), ("F", self.free),
            )
            if on
        )
        ident = f"{self.vnode}@{self.offset}" if self.named else "anon"
        return f"<Page#{self.frame} {ident} [{flags}]>"
