"""vnode / vfs interfaces.

Each file system type implements two object classes, *vfs* and *vnode*
[Kleiman].  Only the operations this reproduction exercises are declared:
``rdwr`` (read/write syscalls), ``getpage``/``putpage`` (where the I/O
happens), ``fsync``, and directory operations for the real file systems.

All operations that may perform I/O are generators (simulation processes);
call them with ``yield from``.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from itertools import count
from typing import TYPE_CHECKING, Any, Generator

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm.page import Page

_vnode_ids = count(1)


class VnodeType(enum.Enum):
    """File type, as far as this reproduction needs."""

    REGULAR = "VREG"
    DIRECTORY = "VDIR"
    BLOCK = "VBLK"


class RW(enum.Enum):
    """Direction of an rdwr call (UIO_READ / UIO_WRITE)."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class PutFlags:
    """How a putpage call should behave.

    ``delay``
        The delayed-write path used when ufs_rdwr unmaps a dirty page; this
        is where the paper's write clustering lives ("pretend the I/O
        completed immediately").
    ``async_``
        Start the write but do not wait for it (B_ASYNC).
    ``free``
        Free the page once clean (B_FREE) — free-behind and pageout use it.
    ``invalidate``
        Destroy the page after the write (B_INVAL).
    """

    delay: bool = False
    async_: bool = False
    free: bool = False
    invalidate: bool = False

    def __post_init__(self) -> None:
        if self.delay and (self.async_ or self.invalidate):
            raise ValueError("delayed writes cannot also be async/invalidate")


class Vnode(ABC):
    """A file, as seen by the kernel."""

    def __init__(self, vtype: VnodeType):
        self.vnode_id = next(_vnode_ids)
        self.vtype = vtype

    # -- data plane --------------------------------------------------------
    @property
    @abstractmethod
    def size(self) -> int:
        """Current file size in bytes."""

    @abstractmethod
    def rdwr(self, rw: RW, offset: int, payload: "bytes | int",
             req: Any | None = None) -> Generator[Any, Any, bytes | int]:
        """Read or write at ``offset``.

        For ``RW.READ``, ``payload`` is a byte count; returns the bytes read
        (may be short at EOF).  For ``RW.WRITE``, ``payload`` is the data;
        returns the byte count written.

        ``req`` is the optional :class:`~repro.sim.request.IORequest`
        context the caller opened at the syscall boundary; implementations
        thread it down so disk transfers are attributed to the request.
        Every operation below accepts the same optional ``req``.
        """

    @abstractmethod
    def getpage(self, offset: int, rw: RW = RW.READ,
                req: Any | None = None) -> Generator[Any, Any, "Page"]:
        """Return the page at ``offset``, reading it in if necessary."""

    @abstractmethod
    def putpage(self, offset: int, length: int, flags: PutFlags,
                req: Any | None = None) -> Generator[Any, Any, None]:
        """Write pages in ``[offset, offset+length)`` back to storage."""

    def fsync(self, req: Any | None = None) -> Generator[Any, Any, None]:
        """Flush all dirty pages synchronously (default: via putpage)."""
        yield from self.putpage(0, max(self.size, 0), PutFlags(), req=req)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} v{self.vnode_id} {self.vtype.value}>"


class Vfs(ABC):
    """A mounted instance of a file system."""

    def __init__(self, name: str):
        self.name = name

    @property
    @abstractmethod
    def root(self) -> Vnode:
        """The root vnode of this file system."""

    def sync(self) -> Generator[Any, Any, None]:
        """Flush file system state (default: nothing)."""
        return
        yield  # pragma: no cover - makes this a generator
