"""The virtual file system (VFS) layer.

The VFS interface lets the kernel drive any file system implementation
through ``rdwr``/``getpage``/``putpage`` — the three entry points the paper
cares about — without knowing the implementation.  UFS (:mod:`repro.ufs`)
and S5FS (:mod:`repro.s5fs`) implement these; ``specfs``
(:class:`~repro.vfs.specfs.RawDiskVnode`) provides the raw-disk escape hatch
the paper lists (and rejects) as a performance alternative.
"""

from repro.vfs.vnode import PutFlags, RW, Vfs, Vnode, VnodeType
from repro.vfs.specfs import RawDiskVnode

__all__ = ["PutFlags", "RW", "RawDiskVnode", "Vfs", "Vnode", "VnodeType"]
