"""specfs: the raw disk as a vnode.

The paper's first rejected alternative: "Get rid of the file system
altogether by using the raw disk...  There is no file system, no file
abstraction, no read ahead, no caching."  Databases did exactly this; we
provide it both as a baseline for the benchmarks and as the device path
``mkfs``/``fsck`` use.

Raw I/O goes straight to the driver: one buf per call, fully synchronous,
no page cache involvement.  Offsets and lengths must be sector aligned,
as with real character devices.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.disk.buf import Buf, BufOp
from repro.vfs.vnode import PutFlags, RW, Vnode, VnodeType

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu import Cpu
    from repro.disk.driver import DiskDriver
    from repro.sim.engine import Engine
    from repro.vm.page import Page


class RawDiskVnode(Vnode):
    """``/dev/rsd0``: the whole disk, one byte stream, no cache."""

    def __init__(self, engine: "Engine", driver: "DiskDriver", cpu: "Cpu"):
        super().__init__(VnodeType.BLOCK)
        self.engine = engine
        self.driver = driver
        self.cpu = cpu
        self.sector_size = driver.disk.geometry.sector_size

    @property
    def size(self) -> int:
        return self.driver.disk.geometry.capacity_bytes

    def _check_aligned(self, offset: int, length: int) -> None:
        if offset < 0 or length <= 0:
            raise ValueError("offset must be >= 0 and length positive")
        if offset % self.sector_size or length % self.sector_size:
            raise ValueError(
                f"raw disk I/O must be {self.sector_size}-byte aligned "
                f"(offset={offset}, length={length})"
            )
        if offset + length > self.size:
            raise ValueError("raw I/O beyond end of device")

    def rdwr(self, rw: RW, offset: int, payload: "bytes | int",
             req: Any | None = None) -> Generator[Any, Any, bytes | int]:
        """Synchronous raw read/write; "a direct interface plus a few
        permission checks"."""
        costs = self.cpu.costs
        yield from self.cpu.work("syscall", costs.syscall)
        if rw is RW.READ:
            assert isinstance(payload, int)
            self._check_aligned(offset, payload)
            buf = Buf(
                self.engine, BufOp.READ,
                sector=offset // self.sector_size,
                nsectors=payload // self.sector_size,
            )
            if req is not None:
                buf.request = req
                buf.parent_span = req.current_span
            yield from self.cpu.work("driver", costs.driver_strategy)
            self.driver.strategy(buf)
            yield buf.done
            assert buf.data is not None
            yield from self.cpu.copy("copyout", len(buf.data))
            return buf.data
        data = bytes(payload)  # type: ignore[arg-type]
        self._check_aligned(offset, len(data))
        yield from self.cpu.copy("copyin", len(data))
        buf = Buf(
            self.engine, BufOp.WRITE,
            sector=offset // self.sector_size,
            nsectors=len(data) // self.sector_size,
            data=data,
        )
        if req is not None:
            buf.request = req
            buf.parent_span = req.current_span
        yield from self.cpu.work("driver", costs.driver_strategy)
        self.driver.strategy(buf)
        yield buf.done
        return len(data)

    def getpage(self, offset: int, rw: RW = RW.READ,
                req: Any | None = None) -> Generator[Any, Any, "Page"]:
        raise NotImplementedError("raw disk is not pageable")
        yield  # pragma: no cover

    def putpage(self, offset: int, length: int, flags: PutFlags,
                req: Any | None = None) -> Generator[Any, Any, None]:
        raise NotImplementedError("raw disk is not pageable")
        yield  # pragma: no cover
