"""S5FS: a simplified System V file system, for the related-work comparison.

The paper compares its UFS clustering against Peacock's CounterPoint fast
file system work, which started from the System V file system.  The
differences the paper enumerates are structural, so reproducing the
comparison needs a real (if reduced) S5FS:

* a **LIFO free-list allocator** "that gets scrambled as the file system
  ages" — fresh file systems allocate contiguously, aged ones do not;
* an old-style **fixed-size buffer cache** with ``bread``/``bwrite``/
  ``bdwrite`` — no unified page cache;
* small (1 KB) blocks, 64-byte dinodes, 16-byte directory entries
  (14-character names), a flat root directory (subdirectories are outside
  the comparison's scope);
* optional **mbread/mbwrite clustering** in the style Peacock added:
  contiguous runs are read/written as one request when the free-list order
  happens to have allocated them contiguously.
"""

from repro.s5fs.bufcache import BufferCache
from repro.s5fs.check import S5CheckReport, s5check
from repro.s5fs.fs import S5FileSystem, s5_mkfs
from repro.s5fs.ondisk import S5Params, S5Superblock

__all__ = ["BufferCache", "S5CheckReport", "S5FileSystem", "S5Params",
           "S5Superblock", "s5_mkfs", "s5check"]
