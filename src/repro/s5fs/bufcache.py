"""The old-style fixed buffer cache (bread / bwrite / bdwrite / breada).

This is the pre-SunOS-VM world the paper contrasts with: "Older UNIX
variants confined I/O pages to a small buffer cache."  A fixed number of
``bsize`` buffers, LRU replacement, delayed writes flushed on eviction or
sync.  Peacock's ``mbread`` (multi-block read) lives here too: when asked,
it reads a run of physically contiguous blocks in one request and installs
each block in its own buffer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Generator

from repro.disk.buf import Buf, BufOp
from repro.sim.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu import Cpu
    from repro.disk.driver import DiskDriver
    from repro.sim.engine import Engine


class CacheBuf:
    """One buffer: a block's worth of data plus state."""

    __slots__ = ("blkno", "data", "dirty")

    def __init__(self, blkno: int, data: bytearray):
        self.blkno = blkno
        self.data = data
        self.dirty = False


class BufferCache:
    """A fixed pool of single-block buffers with LRU replacement."""

    def __init__(self, engine: "Engine", driver: "DiskDriver", cpu: "Cpu",
                 bsize: int, nbufs: int = 64):
        if nbufs <= 0:
            raise ValueError("nbufs must be positive")
        if bsize % 512:
            raise ValueError("bsize must be a multiple of the sector size")
        self.engine = engine
        self.driver = driver
        self.cpu = cpu
        self.bsize = bsize
        self.nbufs = nbufs
        self._bufs: OrderedDict[int, CacheBuf] = OrderedDict()
        self.stats = StatSet("bufcache")

    def _sectors(self, blkno: int) -> tuple[int, int]:
        per_block = self.bsize // 512
        return blkno * per_block, per_block

    def contains(self, blkno: int) -> bool:
        """True if the block is cached (no LRU side effects)."""
        return blkno in self._bufs

    # -- core operations ------------------------------------------------------
    def getblk(self, blkno: int) -> Generator[Any, Any, CacheBuf]:
        """A buffer for ``blkno`` without reading it (contents undefined if
        not cached)."""
        cached = self._bufs.get(blkno)
        if cached is not None:
            self._bufs.move_to_end(blkno)
            return cached
        buf = CacheBuf(blkno, bytearray(self.bsize))
        yield from self._make_room()
        self._bufs[blkno] = buf
        return buf

    def bread(self, blkno: int) -> Generator[Any, Any, CacheBuf]:
        """Read a block through the cache (synchronous on a miss)."""
        cached = self._bufs.get(blkno)
        if cached is not None:
            self._bufs.move_to_end(blkno)
            self.stats.incr("hits")
            return cached
        self.stats.incr("misses")
        sector, nsectors = self._sectors(blkno)
        io = Buf(self.engine, BufOp.READ, sector, nsectors)
        yield from self.cpu.work("driver", self.cpu.costs.driver_strategy)
        self.driver.strategy(io)
        yield io.done
        assert io.data is not None
        buf = CacheBuf(blkno, bytearray(io.data))
        yield from self._make_room()
        self._bufs[blkno] = buf
        return buf

    def mbread(self, blknos: list[int]) -> Generator[Any, Any, list[CacheBuf]]:
        """Peacock's multi-block read: ``blknos`` must be physically
        consecutive; uncached suffixes are fetched in one request."""
        if not blknos:
            raise ValueError("mbread needs at least one block")
        for a, b in zip(blknos, blknos[1:]):
            if b != a + 1:
                raise ValueError("mbread blocks must be consecutive")
        missing = [b for b in blknos if b not in self._bufs]
        results: dict[int, CacheBuf] = {}
        if missing:
            # Read the whole consecutive span covering the missing blocks.
            first, last = missing[0], missing[-1]
            sector, per_block = self._sectors(first)
            nsectors = (last - first + 1) * per_block
            io = Buf(self.engine, BufOp.READ, sector, nsectors)
            yield from self.cpu.work("driver", self.cpu.costs.driver_strategy)
            self.driver.strategy(io)
            yield io.done
            assert io.data is not None
            self.stats.incr("mbreads")
            for blkno in range(first, last + 1):
                if blkno in self._bufs:
                    continue
                lo = (blkno - first) * self.bsize
                buf = CacheBuf(blkno, bytearray(io.data[lo:lo + self.bsize]))
                yield from self._make_room()
                self._bufs[blkno] = buf
        for blkno in blknos:
            buf = self._bufs[blkno]
            self._bufs.move_to_end(blkno)
            results[blkno] = buf
        return [results[b] for b in blknos]

    def bdwrite(self, buf: CacheBuf) -> None:
        """Delayed write: flushed on eviction or sync."""
        buf.dirty = True
        self.stats.incr("delayed_writes")

    def bwrite(self, buf: CacheBuf) -> Generator[Any, Any, None]:
        """Synchronous write."""
        yield from self._push(buf, wait=True)
        self.stats.incr("sync_writes")

    def bawrite(self, buf: CacheBuf) -> Generator[Any, Any, None]:
        """Asynchronous write."""
        yield from self._push(buf, wait=False)
        self.stats.incr("async_writes")

    def mbwrite(self, bufs: list[CacheBuf]) -> Generator[Any, Any, None]:
        """Write consecutive dirty buffers as one request (asynchronous)."""
        if not bufs:
            return
        for a, b in zip(bufs, bufs[1:]):
            if b.blkno != a.blkno + 1:
                raise ValueError("mbwrite blocks must be consecutive")
        data = b"".join(bytes(b.data) for b in bufs)
        sector, _ = self._sectors(bufs[0].blkno)
        io = Buf(self.engine, BufOp.WRITE, sector, len(data) // 512,
                 data=data, async_=True)
        for b in bufs:
            b.dirty = False
        yield from self.cpu.work("driver", self.cpu.costs.driver_strategy)
        self.driver.strategy(io)
        self.stats.incr("mbwrites")

    def sync(self) -> Generator[Any, Any, int]:
        """Flush all dirty buffers; returns how many were written."""
        flushed = 0
        for buf in [b for b in self._bufs.values() if b.dirty]:
            yield from self._push(buf, wait=True)
            flushed += 1
        return flushed

    @property
    def dirty_count(self) -> int:
        return sum(1 for b in self._bufs.values() if b.dirty)

    def invalidate(self, blkno: int) -> None:
        """Forget a block (freed); dirty contents are dead."""
        self._bufs.pop(blkno, None)

    # -- internals ------------------------------------------------------------------
    def _make_room(self) -> Generator[Any, Any, None]:
        while len(self._bufs) >= self.nbufs:
            _, victim = next(iter(self._bufs.items()))
            if victim.dirty:
                self.stats.incr("eviction_writebacks")
                yield from self._push(victim, wait=True)
            self._bufs.pop(victim.blkno, None)

    def _push(self, buf: CacheBuf, wait: bool) -> Generator[Any, Any, None]:
        sector, _ = self._sectors(buf.blkno)
        io = Buf(self.engine, BufOp.WRITE, sector, self.bsize // 512,
                 data=bytes(buf.data), async_=not wait)
        buf.dirty = False
        yield from self.cpu.work("driver", self.cpu.costs.driver_strategy)
        self.driver.strategy(io)
        if wait:
            yield io.done
