"""s5check: offline consistency checking for S5FS.

The System V analogue of fsck's core phases, used by the tests to show the
baseline's on-disk state is sane too: every data block is either on the
free-list chain or claimed by exactly one inode, directory entries point
at allocated inodes, and the superblock's ``tfree`` matches the chain.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.s5fs.ondisk import (
    S5_NDIRECT, S5_ROOT_INO, S5Dinode, S5Superblock,
    iter_s5_dirents, unpack_free_chain_block,
)
from repro.ufs.ondisk import IFDIR, IFMT

if TYPE_CHECKING:  # pragma: no cover
    from repro.disk.store import DiskStore


@dataclass
class S5CheckReport:
    findings: list[str] = field(default_factory=list)
    inodes_checked: int = 0
    free_blocks: int = 0
    claimed_blocks: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def problem(self, text: str) -> None:
        self.findings.append(text)


def s5check(store: "DiskStore") -> S5CheckReport:
    """Check the S5 file system on ``store``."""
    report = S5CheckReport()
    sb = S5Superblock.unpack(store.read(2, 2))
    bsize = sb.bsize
    per_block = bsize // 512

    def read_block(blk: int) -> bytes:
        return store.read(blk * per_block, per_block)

    # -- walk the free chain ------------------------------------------------
    free: set[int] = set()
    entries = [b for b in sb.free[:sb.nfree]]
    chain_guard = 0
    while entries:
        chain_next = entries[0]
        for blk in entries[1:]:
            if blk:
                if blk in free:
                    report.problem(f"block {blk} twice on the free list")
                free.add(blk)
        if chain_next == 0:
            break
        if chain_next in free:
            report.problem(f"chain block {chain_next} already free")
            break
        free.add(chain_next)  # the holder itself is a free block
        nfree, blocks = unpack_free_chain_block(read_block(chain_next))
        entries = blocks[:nfree]
        chain_guard += 1
        if chain_guard > sb.fsize:
            report.problem("free chain does not terminate")
            break
    report.free_blocks = len(free)
    if len(free) != sb.tfree:
        report.problem(
            f"superblock tfree {sb.tfree} but chain holds {len(free)}"
        )

    # -- walk the inodes ---------------------------------------------------------
    claims: dict[int, int] = {}
    modes: dict[int, int] = {}
    nindir = bsize // 4

    def claim(ino: int, blk: int) -> None:
        if not sb.data_start <= blk < sb.fsize:
            report.problem(f"inode {ino}: block {blk} out of range")
            return
        if blk in free:
            report.problem(f"block {blk} free but claimed by inode {ino}")
        if blk in claims:
            report.problem(
                f"block {blk} claimed by inodes {claims[blk]} and {ino}"
            )
        claims[blk] = ino
        report.claimed_blocks += 1

    for ino in range(sb.inodes):
        blk_addr, off = sb.inode_location(ino)
        din = S5Dinode.unpack(read_block(blk_addr)[off:off + 64])
        if not din.is_allocated or ino < S5_ROOT_INO:
            continue
        report.inodes_checked += 1
        modes[ino] = din.mode
        nblocks = (din.size + bsize - 1) // bsize
        for lbn in range(min(nblocks, S5_NDIRECT)):
            if din.addrs[lbn]:
                claim(ino, din.addrs[lbn])
        if din.addrs[S5_NDIRECT]:
            indirect = din.addrs[S5_NDIRECT]
            claim(ino, indirect)
            block = read_block(indirect)
            for i in range(nindir):
                (child,) = struct.unpack_from("<I", block, i * 4)
                if child:
                    claim(ino, child)
        if din.addrs[S5_NDIRECT + 1]:
            douter = din.addrs[S5_NDIRECT + 1]
            claim(ino, douter)
            outer = read_block(douter)
            for i in range(nindir):
                (mid,) = struct.unpack_from("<I", outer, i * 4)
                if not mid:
                    continue
                claim(ino, mid)
                inner = read_block(mid)
                for j in range(nindir):
                    (child,) = struct.unpack_from("<I", inner, j * 4)
                    if child:
                        claim(ino, child)

    # -- the flat root directory -----------------------------------------------------
    root_blk, root_off = sb.inode_location(S5_ROOT_INO)
    root = S5Dinode.unpack(read_block(root_blk)[root_off:root_off + 64])
    if (root.mode & IFMT) != IFDIR:
        report.problem("root inode is not a directory")
        return report
    nblocks = (root.size + bsize - 1) // bsize
    for lbn in range(min(nblocks, S5_NDIRECT)):
        blk = root.addrs[lbn]
        if blk == 0:
            report.problem("hole in the root directory")
            continue
        for _, ino, name in iter_s5_dirents(read_block(blk)):
            if name in (".", ".."):
                continue
            if ino not in modes:
                report.problem(
                    f"entry {name!r} points at unallocated inode {ino}"
                )
    return report
