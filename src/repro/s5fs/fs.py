"""The S5 file system proper: free list, inodes, a flat root directory,
read/write paths with optional Peacock-style clustering.

The LIFO free-list allocator is the load-bearing part: ``s5_mkfs`` builds
the chain in ascending block order, so a *fresh* file system hands out
contiguous blocks; every ``free``/``alloc`` cycle permutes the order, so an
*aged* file system does not ("it is based on a free list that gets
scrambled as the file system ages").
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Any, Generator

from repro.errors import (
    FileExistsError_, FileNotFoundError_, InvalidArgumentError, NoSpaceError,
)
from repro.s5fs.bufcache import BufferCache
from repro.s5fs.ondisk import (
    NICFREE, S5_DIRENT_SIZE, S5_MAGIC, S5_NADDR, S5_NDIRECT, S5_ROOT_INO,
    S5Dinode, S5Params, S5Superblock, iter_s5_dirents, pack_free_chain_block,
    pack_s5_dirent, unpack_free_chain_block,
)
from repro.sim.stats import StatSet
from repro.ufs.ondisk import IFDIR, IFREG

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu import Cpu
    from repro.disk.driver import DiskDriver
    from repro.disk.store import DiskStore
    from repro.sim.engine import Engine


def s5_mkfs(store: "DiskStore", params: S5Params | None = None,
            size_blocks: int | None = None) -> S5Superblock:
    """Build an S5 file system (offline, via the data plane)."""
    params = params if params is not None else S5Params()
    bsize = params.bsize
    per_block = bsize // 512
    total = size_blocks if size_blocks is not None else (
        store.total_sectors // per_block
    )
    if total < 16:
        raise InvalidArgumentError("device too small for S5FS")
    isize = max(1, (total * bsize // params.nbpi * 64) // bsize)
    data_start = 2 + isize
    if data_start >= total - 2:
        raise InvalidArgumentError("inode list leaves no data blocks")

    sb = S5Superblock(magic=S5_MAGIC, bsize=bsize, isize=isize, fsize=total,
                      tfree=0, nfree=0)
    # Build the free chain so blocks pop in ASCENDING order.  The chain
    # stores batches; within the superblock cache, free[] pops from the
    # top, so each batch is stored high-to-low.
    data_blocks = list(range(data_start, total))
    root_block = data_blocks.pop(0)  # root directory data
    chain_head = 0  # 0 terminates the chain
    batches: list[list[int]] = []
    batch: list[int] = []
    for blk in data_blocks:
        batch.append(blk)
        if len(batch) == NICFREE - 1:
            batches.append(batch)
            batch = []
    if batch:
        batches.append(batch)
    # Deepest batch = highest block numbers; link backwards.
    for batch in reversed(batches[1:] if batches else []):
        holder = batch[0]
        rest = batch[1:]
        entries = [chain_head] + list(reversed(rest))
        store.write(holder * per_block,
                    pack_free_chain_block(bsize, len(entries), entries))
        # The holder block itself is part of the chain: popping it yields
        # its stored batch.  Classic S5 keeps the holder as a free block
        # whose contents are read before reuse.
        chain_head = holder
    if batches:
        first = batches[0]
        entries = [chain_head] + list(reversed(first))
        sb.nfree = len(entries)
        sb.free = (entries + [0] * NICFREE)[:NICFREE]
    sb.tfree = len(data_blocks)

    # Inode list: zeroed; root dir at inode 2.
    zero = bytes(bsize)
    for blk in range(2, data_start):
        store.write(blk * per_block, zero)
    root = S5Dinode(mode=IFDIR | 0o755, nlink=2,
                    addrs=(root_block,) + (0,) * (S5_NADDR - 1),
                    size=2 * S5_DIRENT_SIZE)
    blk, off = sb.inode_location(S5_ROOT_INO)
    iblock = bytearray(bsize)
    iblock[off:off + 64] = root.pack()
    store.write(blk * per_block, bytes(iblock))
    dirblock = bytearray(bsize)
    dirblock[0:16] = pack_s5_dirent(S5_ROOT_INO, ".")
    dirblock[16:32] = pack_s5_dirent(S5_ROOT_INO, "..")
    store.write(root_block * per_block, bytes(dirblock))

    store.write(1 * per_block, sb.pack())
    return sb


class S5Inode:
    """In-memory S5 inode."""

    def __init__(self, ino: int, din: S5Dinode):
        self.ino = ino
        self.mode = din.mode
        self.nlink = din.nlink
        self.addrs = list(din.addrs)
        self.size = din.size
        self.dirty = False

    def to_dinode(self) -> S5Dinode:
        return S5Dinode(mode=self.mode, nlink=self.nlink, uid_gid=0,
                        addrs=tuple(self.addrs), size=self.size)


class S5FileSystem:
    """A mounted S5FS with a flat root directory.

    ``clustering=True`` enables the Peacock-style mbread/mbwrite paths:
    sequential reads probe how far the file continues physically
    contiguously and fetch the run with one I/O; writes are delayed and
    flushed in contiguous runs.
    """

    def __init__(self, engine: "Engine", cpu: "Cpu", driver: "DiskDriver",
                 nbufs: int = 64, clustering: bool = False,
                 cluster_blocks: int = 56):
        self.engine = engine
        self.cpu = cpu
        self.driver = driver
        self.clustering = clustering
        self.cluster_blocks = cluster_blocks
        self.sb = S5Superblock.unpack(
            driver.disk.store.read(1 * 2, 2)  # bsize must be 1024 for now
        )
        if self.sb.bsize % 512:
            raise InvalidArgumentError("bad S5 block size")
        self.cache = BufferCache(engine, driver, cpu, self.sb.bsize, nbufs)
        self.stats = StatSet("s5fs")
        self._icache: dict[int, S5Inode] = {}

    # -- free list (the aging mechanism) ------------------------------------------
    def alloc_block(self) -> Generator[Any, Any, int]:
        """Pop the free list head (LIFO)."""
        sb = self.sb
        yield from self.cpu.work("alloc", self.cpu.costs.alloc_block)
        if sb.nfree == 0 or sb.tfree == 0:
            raise NoSpaceError("S5FS out of blocks")
        sb.nfree -= 1
        blk = sb.free[sb.nfree]
        if sb.nfree == 0:
            # The popped block holds the next batch of the chain.
            if blk == 0:
                raise NoSpaceError("S5FS free list exhausted")
            buf = yield from self.cache.bread(blk)
            nfree, entries = unpack_free_chain_block(bytes(buf.data))
            sb.nfree = nfree
            sb.free = (entries + [0] * NICFREE)[:NICFREE]
        sb.tfree -= 1
        if blk == 0:
            raise NoSpaceError("S5FS free list exhausted")
        self.stats.incr("blocks_allocated")
        return blk

    def free_block(self, blk: int) -> Generator[Any, Any, None]:
        """Push onto the free list head — this is what scrambles ordering."""
        sb = self.sb
        if sb.nfree == NICFREE:
            # Spill the cached batch into the freed block itself.
            buf = yield from self.cache.getblk(blk)
            buf.data[:] = pack_free_chain_block(sb.bsize, sb.nfree, sb.free)
            self.cache.bdwrite(buf)
            sb.nfree = 0
            sb.free = [0] * NICFREE
        sb.free[sb.nfree] = blk
        sb.nfree += 1
        sb.tfree += 1
        self.stats.incr("blocks_freed")

    # -- inodes ----------------------------------------------------------------------
    def iget(self, ino: int) -> Generator[Any, Any, S5Inode]:
        cached = self._icache.get(ino)
        if cached is not None:
            return cached
        blk, off = self.sb.inode_location(ino)
        buf = yield from self.cache.bread(blk)
        ip = S5Inode(ino, S5Dinode.unpack(bytes(buf.data[off:off + 64])))
        self._icache[ino] = ip
        return ip

    def iput(self, ip: S5Inode) -> Generator[Any, Any, None]:
        blk, off = self.sb.inode_location(ip.ino)
        buf = yield from self.cache.bread(blk)
        buf.data[off:off + 64] = ip.to_dinode().pack()
        self.cache.bdwrite(buf)
        ip.dirty = False

    def _alloc_inode(self, mode: int) -> Generator[Any, Any, S5Inode]:
        """Linear scan of the inode list (classic S5, no cache)."""
        for ino in range(S5_ROOT_INO + 1, self.sb.inodes):
            blk, off = self.sb.inode_location(ino)
            buf = yield from self.cache.bread(blk)
            din = S5Dinode.unpack(bytes(buf.data[off:off + 64]))
            if not din.is_allocated and ino not in self._icache:
                ip = S5Inode(ino, S5Dinode(mode=mode, nlink=1))
                self._icache[ino] = ip
                yield from self.iput(ip)
                return ip
        raise NoSpaceError("S5FS out of inodes")

    # -- bmap -------------------------------------------------------------------------
    def bmap(self, ip: S5Inode, lbn: int, alloc: bool = False
             ) -> Generator[Any, Any, int]:
        nindir = self.sb.bsize // 4
        yield from self.cpu.work("bmap", self.cpu.costs.bmap)
        if lbn < 0:
            raise InvalidArgumentError("negative lbn")
        if lbn < S5_NDIRECT:
            if ip.addrs[lbn] == 0 and alloc:
                ip.addrs[lbn] = yield from self.alloc_block()
                ip.dirty = True
            return ip.addrs[lbn]
        lbn -= S5_NDIRECT
        if lbn < nindir:
            slot = S5_NDIRECT
            if ip.addrs[slot] == 0:
                if not alloc:
                    return 0
                ip.addrs[slot] = yield from self._new_pointer_block()
                ip.dirty = True
            return (yield from self._pointer(ip.addrs[slot], lbn, alloc))
        lbn -= nindir
        if lbn < nindir * nindir:
            slot = S5_NDIRECT + 1
            if ip.addrs[slot] == 0:
                if not alloc:
                    return 0
                ip.addrs[slot] = yield from self._new_pointer_block()
                ip.dirty = True
            outer = yield from self._pointer(ip.addrs[slot], lbn // nindir,
                                             alloc, pointer_block=True)
            if outer == 0:
                return 0
            return (yield from self._pointer(outer, lbn % nindir, alloc))
        raise InvalidArgumentError("file too large for S5FS")

    def _new_pointer_block(self) -> Generator[Any, Any, int]:
        blk = yield from self.alloc_block()
        buf = yield from self.cache.getblk(blk)
        buf.data[:] = bytes(self.sb.bsize)
        self.cache.bdwrite(buf)
        return blk

    def _pointer(self, block: int, index: int, alloc: bool,
                 pointer_block: bool = False) -> Generator[Any, Any, int]:
        buf = yield from self.cache.bread(block)
        (value,) = struct.unpack_from("<I", buf.data, index * 4)
        if value == 0 and alloc:
            if pointer_block:
                value = yield from self._new_pointer_block()
            else:
                value = yield from self.alloc_block()
            struct.pack_into("<I", buf.data, index * 4, value)
            self.cache.bdwrite(buf)
        return value

    def _contig_run(self, ip: S5Inode, lbn: int, limit: int
                    ) -> Generator[Any, Any, list[int]]:
        """Physical blocks for lbn, lbn+1, ... while consecutive."""
        first = yield from self.bmap(ip, lbn)
        if first == 0:
            return []
        run = [first]
        nblocks = (ip.size + self.sb.bsize - 1) // self.sb.bsize
        while len(run) < limit and lbn + len(run) < nblocks:
            nxt = yield from self.bmap(ip, lbn + len(run))
            if nxt != run[-1] + 1:
                break
            run.append(nxt)
        return run

    # -- directory (flat root) -----------------------------------------------------------
    def lookup(self, name: str) -> Generator[Any, Any, int | None]:
        root = yield from self.iget(S5_ROOT_INO)
        nblocks = (root.size + self.sb.bsize - 1) // self.sb.bsize
        for lbn in range(nblocks):
            blk = yield from self.bmap(root, lbn)
            buf = yield from self.cache.bread(blk)
            for _, ino, entry in iter_s5_dirents(bytes(buf.data)):
                if entry == name:
                    return ino
        return None

    def create(self, name: str) -> Generator[Any, Any, S5Inode]:
        existing = yield from self.lookup(name)
        if existing is not None:
            raise FileExistsError_(name)
        ip = yield from self._alloc_inode(IFREG | 0o644)
        yield from self._dir_enter(name, ip.ino)
        self.stats.incr("creates")
        return ip

    def _dir_enter(self, name: str, ino: int) -> Generator[Any, Any, None]:
        root = yield from self.iget(S5_ROOT_INO)
        entry = pack_s5_dirent(ino, name)
        nblocks = (root.size + self.sb.bsize - 1) // self.sb.bsize
        for lbn in range(nblocks):
            blk = yield from self.bmap(root, lbn)
            buf = yield from self.cache.bread(blk)
            for off in range(0, self.sb.bsize, S5_DIRENT_SIZE):
                in_file = lbn * self.sb.bsize + off
                (slot_ino,) = struct.unpack_from("<H", buf.data, off)
                if slot_ino != 0:
                    continue
                # A free slot (deleted entry, or virgin space at the tail).
                if in_file >= root.size:
                    root.size = in_file + S5_DIRENT_SIZE
                    yield from self.iput(root)
                buf.data[off:off + S5_DIRENT_SIZE] = entry
                yield from self.cache.bwrite(buf)
                return
        # Need a new directory block.
        blk = yield from self.bmap(root, nblocks, alloc=True)
        buf = yield from self.cache.getblk(blk)
        buf.data[:] = bytes(self.sb.bsize)
        buf.data[0:S5_DIRENT_SIZE] = entry
        yield from self.cache.bwrite(buf)
        root.size = nblocks * self.sb.bsize + S5_DIRENT_SIZE
        yield from self.iput(root)

    def unlink(self, name: str) -> Generator[Any, Any, None]:
        root = yield from self.iget(S5_ROOT_INO)
        nblocks = (root.size + self.sb.bsize - 1) // self.sb.bsize
        for lbn in range(nblocks):
            blk = yield from self.bmap(root, lbn)
            buf = yield from self.cache.bread(blk)
            for off, ino, entry in iter_s5_dirents(bytes(buf.data)):
                if entry != name:
                    continue
                struct.pack_into("<H", buf.data, off, 0)
                yield from self.cache.bwrite(buf)
                yield from self._truncate_and_free(ino)
                self.stats.incr("unlinks")
                return
        raise FileNotFoundError_(name)

    def _truncate_and_free(self, ino: int) -> Generator[Any, Any, None]:
        ip = yield from self.iget(ino)
        nindir = self.sb.bsize // 4
        nblocks = (ip.size + self.sb.bsize - 1) // self.sb.bsize
        for lbn in range(nblocks):
            blk = yield from self.bmap(ip, lbn)
            if blk:
                self.cache.invalidate(blk)
                yield from self.free_block(blk)
        for slot in (S5_NDIRECT, S5_NDIRECT + 1):
            if ip.addrs[slot]:
                # Free pointer blocks (double-indirect inner blocks too).
                if slot == S5_NDIRECT + 1:
                    buf = yield from self.cache.bread(ip.addrs[slot])
                    for i in range(nindir):
                        (inner,) = struct.unpack_from("<I", buf.data, i * 4)
                        if inner:
                            self.cache.invalidate(inner)
                            yield from self.free_block(inner)
                self.cache.invalidate(ip.addrs[slot])
                yield from self.free_block(ip.addrs[slot])
        ip.mode = 0
        ip.nlink = 0
        ip.size = 0
        ip.addrs = [0] * S5_NADDR
        yield from self.iput(ip)
        del self._icache[ino]

    # -- read / write ---------------------------------------------------------------------------
    def read(self, ip: S5Inode, offset: int, count: int
             ) -> Generator[Any, Any, bytes]:
        bsize = self.sb.bsize
        cpu = self.cpu
        if offset >= ip.size:
            return b""
        count = min(count, ip.size - offset)
        parts: list[bytes] = []
        remaining = count
        while remaining > 0:
            yield from cpu.work("syscall", cpu.costs.syscall)
            lbn = offset // bsize
            in_block = offset - lbn * bsize
            chunk = min(bsize - in_block, remaining)
            blk = yield from self.bmap(ip, lbn)
            if blk == 0:
                buf = None
            elif self.clustering and not self.cache.contains(blk):
                # Probe contiguity only on a cache miss (the probe itself
                # costs bmap work; cached blocks need none of it).
                run = yield from self._contig_run(ip, lbn, self.cluster_blocks)
                bufs = yield from self.cache.mbread(run)
                buf = bufs[0]
            else:
                buf = yield from self.cache.bread(blk)
            if buf is None:
                parts.append(bytes(chunk))  # hole
            else:
                yield from cpu.copy("copyout", chunk)
                parts.append(bytes(buf.data[in_block:in_block + chunk]))
            offset += chunk
            remaining -= chunk
        return b"".join(parts)

    def write(self, ip: S5Inode, offset: int, data: bytes
              ) -> Generator[Any, Any, int]:
        bsize = self.sb.bsize
        cpu = self.cpu
        written = 0
        pending: list = []  # delayed buffers for mbwrite clustering
        while written < len(data):
            yield from cpu.work("syscall", cpu.costs.syscall)
            lbn = (offset + written) // bsize
            in_block = (offset + written) - lbn * bsize
            chunk = min(bsize - in_block, len(data) - written)
            blk = yield from self.bmap(ip, lbn, alloc=True)
            if in_block == 0 and chunk == bsize:
                buf = yield from self.cache.getblk(blk)
            else:
                buf = yield from self.cache.bread(blk)
            yield from cpu.copy("copyin", chunk)
            buf.data[in_block:in_block + chunk] = data[written:written + chunk]
            if self.clustering:
                buf.dirty = True
                if pending and buf.blkno != pending[-1].blkno + 1:
                    yield from self.cache.mbwrite(pending)
                    pending = []
                pending.append(buf)
                if len(pending) >= self.cluster_blocks:
                    yield from self.cache.mbwrite(pending)
                    pending = []
            else:
                yield from self.cache.bawrite(buf)
            written += chunk
        if pending:
            yield from self.cache.mbwrite(pending)
        new_end = offset + written
        if new_end > ip.size:
            ip.size = new_end
            yield from self.iput(ip)
        return written

    def sync(self) -> Generator[Any, Any, None]:
        for ip in list(self._icache.values()):
            if ip.dirty:
                yield from self.iput(ip)
        yield from self.cache.sync()
        buf = yield from self.cache.getblk(1)
        buf.data[:] = self.sb.pack()
        yield from self.cache.bwrite(buf)

    # -- aging ------------------------------------------------------------------------------------
    def free_list_contiguity(self, sample: int = 200) -> float:
        """Fraction of adjacent pops in the cached free list that are
        physically consecutive — 1.0 on a fresh fs, ~0 when aged."""
        entries = [b for b in reversed(self.sb.free[:self.sb.nfree]) if b]
        if len(entries) < 2:
            return 1.0
        entries = entries[:sample]
        consecutive = sum(1 for a, b in zip(entries, entries[1:]) if b == a + 1)
        return consecutive / (len(entries) - 1)
