"""S5FS on-disk structures.

Layout (in 1 KB blocks): block 0 boot, block 1 superblock, blocks
``2 .. 2+isize`` the inode list, data blocks after that.  The free list is
the classic chain: the superblock caches up to ``NICFREE`` free block
numbers; slot 0 points at a block holding the next batch.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import CorruptionError

S5_MAGIC = 0xFD187E20
NICFREE = 50  # free block numbers cached in the superblock
S5_DINODE_SIZE = 64
S5_NADDR = 12  # 10 direct, 1 indirect, 1 double indirect
S5_NDIRECT = 10
S5_DIRSIZ = 14  # max file name length
S5_DIRENT_SIZE = 16  # 2-byte inode + 14-byte name
S5_ROOT_INO = 2


@dataclass(frozen=True)
class S5Params:
    """mkfs parameters for S5FS."""

    bsize: int = 1024
    #: Data bytes per inode (sizes the inode list).
    nbpi: int = 4096

    def __post_init__(self) -> None:
        if self.bsize % 512 or self.bsize <= 0:
            raise ValueError("bsize must be a positive multiple of 512")
        if self.nbpi <= 0:
            raise ValueError("nbpi must be positive")


@dataclass
class S5Superblock:
    """The System V superblock (reduced)."""

    _FMT = "<IiiiiI" + "I" * NICFREE

    magic: int
    bsize: int
    isize: int  # inode list length in blocks
    fsize: int  # total blocks
    tfree: int  # total free blocks (bookkeeping)
    nfree: int  # valid entries in free[]
    free: list[int] = field(default_factory=lambda: [0] * NICFREE)

    def pack(self) -> bytes:
        if len(self.free) != NICFREE:
            raise ValueError("free[] must have NICFREE entries")
        data = struct.pack(self._FMT, self.magic, self.bsize, self.isize,
                           self.fsize, self.tfree, self.nfree, *self.free)
        return data.ljust(self.bsize, b"\x00")

    @classmethod
    def unpack(cls, data: bytes) -> "S5Superblock":
        size = struct.calcsize(cls._FMT)
        if len(data) < size:
            raise CorruptionError("short S5 superblock")
        values = struct.unpack(cls._FMT, data[:size])
        sb = cls(values[0], values[1], values[2], values[3], values[4],
                 values[5], list(values[6:]))
        if sb.magic != S5_MAGIC:
            raise CorruptionError(f"bad S5 magic {sb.magic:#x}")
        return sb

    @property
    def inodes(self) -> int:
        return (self.isize * self.bsize) // S5_DINODE_SIZE

    @property
    def data_start(self) -> int:
        return 2 + self.isize

    def inode_location(self, ino: int) -> tuple[int, int]:
        """(block, byte offset) of inode ``ino``."""
        if not 0 <= ino < self.inodes:
            raise ValueError(f"inode {ino} out of range")
        per_block = self.bsize // S5_DINODE_SIZE
        return 2 + ino // per_block, (ino % per_block) * S5_DINODE_SIZE


@dataclass
class S5Dinode:
    """The 64-byte System V dinode (reduced)."""

    _FMT = "<HHI" + "I" * S5_NADDR + "Q"

    mode: int = 0
    nlink: int = 0
    uid_gid: int = 0
    addrs: tuple[int, ...] = (0,) * S5_NADDR
    size: int = 0

    def __post_init__(self) -> None:
        if len(self.addrs) != S5_NADDR:
            raise ValueError(f"addrs must have {S5_NADDR} entries")
        self.addrs = tuple(self.addrs)

    @property
    def is_allocated(self) -> bool:
        return self.mode != 0

    def pack(self) -> bytes:
        data = struct.pack(self._FMT, self.mode, self.nlink, self.uid_gid,
                           *self.addrs, self.size)
        assert len(data) <= S5_DINODE_SIZE
        return data.ljust(S5_DINODE_SIZE, b"\x00")

    @classmethod
    def unpack(cls, data: bytes) -> "S5Dinode":
        size = struct.calcsize(cls._FMT)
        if len(data) < size:
            raise CorruptionError("short S5 dinode")
        values = struct.unpack(cls._FMT, data[:size])
        return cls(values[0], values[1], values[2],
                   tuple(values[3:3 + S5_NADDR]), values[3 + S5_NADDR])


def pack_s5_dirent(ino: int, name: str) -> bytes:
    encoded = name.encode()
    if not 0 < len(encoded) <= S5_DIRSIZ:
        raise ValueError(f"name {name!r} too long for S5FS (max {S5_DIRSIZ})")
    return struct.pack("<H", ino) + encoded.ljust(S5_DIRSIZ, b"\x00")


def iter_s5_dirents(block: bytes) -> list[tuple[int, int, str]]:
    """(offset, ino, name) for each live entry; ino 0 = free slot."""
    entries = []
    for offset in range(0, len(block) - S5_DIRENT_SIZE + 1, S5_DIRENT_SIZE):
        (ino,) = struct.unpack_from("<H", block, offset)
        if ino == 0:
            continue
        raw = block[offset + 2:offset + 2 + S5_DIRSIZ]
        entries.append((offset, ino, raw.rstrip(b"\x00").decode()))
    return entries


def pack_free_chain_block(bsize: int, nfree: int, free: list[int]) -> bytes:
    """A block of the free-list chain: count + NICFREE block numbers."""
    data = struct.pack("<I" + "I" * NICFREE, nfree,
                       *(free + [0] * (NICFREE - len(free))))
    return data.ljust(bsize, b"\x00")


def unpack_free_chain_block(data: bytes) -> tuple[int, list[int]]:
    values = struct.unpack_from("<I" + "I" * NICFREE, data)
    return values[0], list(values[1:])
