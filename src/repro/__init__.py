"""repro: McVoy & Kleiman's UFS I/O clustering, reproduced in simulation.

A full-stack reproduction of *Extent-like Performance from a UNIX File
System* (USENIX Winter 1991): a discrete-event simulated SPARCstation-era
machine (CPU cost model, rotational disk with a look-ahead track buffer,
unified page cache with a two-handed-clock pageout daemon) running a real
FFS-format file system with the paper's clustering enhancements.

Most users want three imports:

>>> from repro.kernel import Proc, System, SystemConfig
>>> system = System.booted(SystemConfig.config_a())
>>> proc = Proc(system)

and then write generator workloads against the POSIX-ish :class:`Proc`
API.  See README.md for the tour, DESIGN.md for the architecture, and
EXPERIMENTS.md for the paper-vs-measured accounting.
"""

from repro.core import ClusterTuning
from repro.kernel import Proc, System, SystemConfig
from repro.ufs import FsParams, fsck, mkfs, tunefs, ufsdump

__version__ = "1.0.0"

__all__ = [
    "ClusterTuning",
    "FsParams",
    "Proc",
    "System",
    "SystemConfig",
    "fsck",
    "mkfs",
    "tunefs",
    "ufsdump",
    "__version__",
]
