"""The network fault plan: a deterministic, seeded schedule of wire trouble.

The disk-side :class:`~repro.faults.plan.FaultPlan` made the storage stack
answer for a flaky drive; :class:`NetFaultPlan` does the same for the NFS
path.  It is injected into :class:`repro.nfs.net.Network`, which consults
``decide`` exactly once per message send, in send order.  Because the
engine is deterministic, the plan's random draws happen in a reproducible
sequence: the same seed and workload produce a byte-identical fault
history, which is what makes network campaigns replayable.

The fault taxonomy (all per-message unless noted):

* **drops** — the datagram vanishes; the client's retransmission timer is
  the only recovery;
* **duplicates** — the datagram is delivered twice (a retransmitting
  bridge, a confused switch); the server's duplicate-request cache and the
  client's xid matching must suppress the copy;
* **reorders** — the datagram is held briefly after leaving the wire, so a
  later send overtakes it;
* **payload corruption** — the bytes arrive damaged; checksums on both
  ends must reject the message (it then behaves like a drop);
* **latency spikes** — a long hold (a congested router), stressing the
  adaptive retransmission timeout;
* **link partitions** — scheduled ``(start, end)`` windows during which
  every message in both directions is dropped;
* **server crash/reboot windows** — at each scheduled crash instant the
  server loses its volatile state: in-flight RPCs are dropped and the
  duplicate-request cache cold-starts; the server answers again once the
  reboot delay has passed.  (The server's disk is write-through, so only
  volatile RPC state dies — the disk-side plan models storage loss.)

Scheduled one-shot faults (``scheduled=[(time, direction, kind), ...]``)
fire on the first matching message at/after their trigger time, mirroring
the disk plan's ``transient_at`` idiom; they are what deterministic unit
tests are built from.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.sim.stats import StatSet

#: Message directions, as Network names them.
UP = "up"       # client -> server
DOWN = "down"   # server -> client
ANY = "any"

_KINDS = ("drop", "duplicate", "corrupt", "reorder", "spike")


@dataclass(frozen=True)
class NetDecision:
    """What the plan decided for one message.

    At most one of ``drop``/``duplicate``/``corrupt`` is set; ``delay`` may
    accompany none of them (a reorder/spike is just a held delivery).
    """

    drop: bool = False
    duplicate: bool = False
    corrupt: bool = False
    delay: float = 0.0


class NetFaultPlan:
    """A seeded, deterministic schedule of network faults.

    All probabilities are per *message* (a retransmitted request rolls the
    dice again, as a real lossy wire would).  ``decide`` must be called
    exactly once per message, in send order, for determinism to hold.
    Setting :attr:`disabled` stops all injection (campaigns do this before
    their verification phase: "after faults clear").
    """

    def __init__(self, seed: int = 0,
                 drop_p: float = 0.0,
                 duplicate_p: float = 0.0,
                 corrupt_p: float = 0.0,
                 reorder_p: float = 0.0,
                 reorder_delay: float = 0.005,
                 spike_p: float = 0.0,
                 spike_delay: float = 0.25,
                 partitions: Iterable[tuple[float, float]] = (),
                 server_crash_at: Iterable[float] = (),
                 server_reboot_delay: float = 0.2,
                 scheduled: Iterable[tuple[float, str, str]] = ()):
        for name, p in (("drop_p", drop_p), ("duplicate_p", duplicate_p),
                        ("corrupt_p", corrupt_p), ("reorder_p", reorder_p),
                        ("spike_p", spike_p)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability")
        if drop_p + duplicate_p + corrupt_p + reorder_p + spike_p > 1.0:
            raise ValueError("fault probabilities must sum to <= 1")
        if reorder_delay < 0 or spike_delay < 0:
            raise ValueError("delays must be >= 0")
        if server_reboot_delay < 0:
            raise ValueError("server_reboot_delay must be >= 0")
        self.seed = seed
        self._rng = random.Random(seed)
        self.drop_p = drop_p
        self.duplicate_p = duplicate_p
        self.corrupt_p = corrupt_p
        self.reorder_p = reorder_p
        self.reorder_delay = reorder_delay
        self.spike_p = spike_p
        self.spike_delay = spike_delay
        self.partitions = sorted(tuple(w) for w in partitions)
        for start, end in self.partitions:
            if end <= start:
                raise ValueError(f"empty partition window ({start}, {end})")
        self.server_crash_at = sorted(server_crash_at)
        self.server_reboot_delay = server_reboot_delay
        self._scheduled = sorted(scheduled)
        for _, direction, kind in self._scheduled:
            if direction not in (UP, DOWN, ANY):
                raise ValueError(f"bad scheduled direction {direction!r}")
            if kind not in _KINDS:
                raise ValueError(f"bad scheduled fault kind {kind!r}")
        self.disabled = False
        self.stats = StatSet("netfaults")

    # -- the injection decision (Network._transfer calls this) ---------------
    def decide(self, direction: str, now: float) -> "NetDecision | None":
        """What, if anything, goes wrong with this message."""
        if self.disabled:
            return None
        if self.link_down(now):
            self.stats.incr("partition_drops")
            return NetDecision(drop=True)
        hit = self._pop_scheduled(direction, now)
        if hit is None:
            u = self._rng.random()
            if u < self.drop_p:
                hit = "drop"
            elif u < self.drop_p + self.duplicate_p:
                hit = "duplicate"
            elif u < self.drop_p + self.duplicate_p + self.corrupt_p:
                hit = "corrupt"
            elif u < (self.drop_p + self.duplicate_p + self.corrupt_p
                      + self.reorder_p):
                hit = "reorder"
            elif u < (self.drop_p + self.duplicate_p + self.corrupt_p
                      + self.reorder_p + self.spike_p):
                hit = "spike"
        if hit is None:
            return None
        self.stats.incr(f"{hit}s")
        if hit == "drop":
            return NetDecision(drop=True)
        if hit == "duplicate":
            return NetDecision(duplicate=True)
        if hit == "corrupt":
            return NetDecision(corrupt=True)
        if hit == "reorder":
            return NetDecision(delay=self.reorder_delay)
        return NetDecision(delay=self.spike_delay)

    def _pop_scheduled(self, direction: str, now: float) -> "str | None":
        """Consume the first matching scheduled one-shot at/after its time."""
        for i, (when, want, kind) in enumerate(self._scheduled):
            if when > now:
                return None
            if want == ANY or want == direction:
                del self._scheduled[i]
                return kind
        return None

    # -- link partitions ------------------------------------------------------
    def link_down(self, now: float) -> bool:
        """True while ``now`` falls inside a partition window."""
        return any(start <= now < end for start, end in self.partitions)

    # -- server crash/reboot windows -----------------------------------------
    def server_down(self, now: float) -> bool:
        """True while the server is crashed and not yet rebooted."""
        return any(t <= now < t + self.server_reboot_delay
                   for t in self.server_crash_at)

    def server_crash_epoch(self, now: float) -> int:
        """How many crash instants have passed by ``now``.

        The server compares this against the epoch it last saw to know it
        has "rebooted" (and must cold-start its duplicate-request cache).
        """
        return sum(1 for t in self.server_crash_at if t <= now)
