"""Exhaustive crash-state exploration over a volatile write cache.

The PR-1 :class:`~repro.faults.campaign.CrashCampaign` samples crash
instants with a seeded RNG; this module replaces luck with enumeration.
A **recording run** executes a workload preset on a disk with a
:class:`~repro.disk.wcache.VolatileWriteCache` whose journal captures
every durability-relevant event (volatile write, FUA write, destage,
flush).  The **explorer** then replays the journal and, at every event,
enumerates the crash states a standards-conforming drive could leave
behind:

* the durable image so far, plus
* any *legal* subset of the cache contents — the drive may destage
  opportunistically in the background, reordering freely within a
  bounded window but never across a ``B_ORDER`` barrier entry — plus
* optionally a torn prefix of the entry that was mid-destage when the
  power died (sector-atomic, like the campaign's torn writes).

Legal subsets of one barrier-free stretch are exactly the sets ``T``
where every included entry has fewer than ``window`` earlier entries
missing (FIFO destaging with an out-of-order window); barrier entries
are all-or-nothing and order the stretches around them.

Each *distinct* materialized image (canonical content hash — the
pruning strategy) is verified once against the **durability contract**
folded from the workload's recorded events up to that crash point:

1. ``fsck --repair`` converges (a second pass is clean);
2. the repaired tree remounts;
3. every file declared durable (fsync/O_SYNC acknowledged) is present
   with its promised bytes intact — unsynced overwrites may leave any
   per-sector mix of promised and later content, never anything else;
4. the PR-4 sanitizer's deep sweep (allocator + coherency + fsck
   walkers) passes on the survivor.

Violations carry the span trees of the requests whose writes were lost
or torn, so a contract breach points at the guilty code path.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Generator

from repro.disk.store import DiskStore
from repro.errors import ReproError
from repro.kernel.config import SystemConfig
from repro.kernel.syscalls import Proc
from repro.kernel.system import System
from repro.sim.engine import SimulationError
from repro.sim.invariants import SanitizerError, render_request
from repro.ufs.fsck import fsck
from repro.units import KB
from repro.vfs.vnode import PutFlags


# ---------------------------------------------------------------------------
# presets
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Preset:
    """One recorded workload shape.

    All write sizes are sector multiples: destaging and tearing are
    sector-atomic, so sector-aligned writes make "old or new, per
    sector" the exact contract for unsynced data.
    """

    name: str
    description: str
    workload: str                 # dispatch key into _WORKLOADS
    files: int = 2
    chunk: int = 2560             # 5 sectors; off block-size to exercise frags
    chunks: int = 4
    cache_bytes: int = 48 * KB
    window: int = 2               # destage reorder window (entries)
    torn_limit: int = 2           # torn candidates per crash subset
    ordered_metadata: bool = False


PRESETS: dict[str, Preset] = {
    p.name: p for p in (
        Preset("smoke",
               "mixed creates/appends/overwrite/rename/unlink, small files",
               workload="smoke", files=3, chunks=5, window=3),
        Preset("append",
               "interleaved growing files, fsync every other chunk "
               "(exercises fragment-tail relocation)",
               workload="append", files=3, chunks=6),
        Preset("overwrite",
               "in-place rewrites of promised ranges, one O_SYNC file",
               workload="overwrite", files=2, chunks=4),
        Preset("rename",
               "write-tmp/fsync/rename-over publish cycles",
               workload="rename", files=3),
        Preset("relocate",
               "fragment-tail relocation with immediate reuse of the old "
               "fragments (the write-cache durability trap)",
               workload="relocate"),
        Preset("spanning",
               "cluster-spanning sequential writes, single trailing fsync",
               workload="spanning", files=1, chunk=16 * KB, chunks=6,
               cache_bytes=96 * KB),
        Preset("ordered",
               "appends with B_ORDER metadata barriers instead of FUA",
               workload="append", files=2, chunks=4,
               ordered_metadata=True),
    )
}


# ---------------------------------------------------------------------------
# contract events
# ---------------------------------------------------------------------------

@dataclass
class ContractEvent:
    """One workload-level durability fact, pinned to a journal position.

    ``pos`` is the journal length when the event was recorded: the event
    is in effect at any crash point at or after index ``pos``.
    """

    kind: str                     # promise | dirty | forget |
                                  # unlink_begin | unlink | rename_begin | rename
    path: str
    pos: int
    content: bytes = b""
    new_path: str = ""


class ContractRecorder:
    """Workload-side recorder: declared-durable snapshots + namespace ops."""

    def __init__(self, system: System):
        self.system = system
        cache = system.write_cache
        assert cache is not None, "crashpoints needs a volatile write cache"
        if cache.journal is None:
            cache.journal = []
        self.journal = cache.journal
        self.events: list[ContractEvent] = []
        #: (kind, ino, journal position) per acknowledged durability point,
        #: fed by the syscall layer's on_durability hook.
        self.durability_points: list[tuple[str, int, int]] = []
        system.on_durability.append(self._on_durability)

    @property
    def pos(self) -> int:
        return len(self.journal)

    def _on_durability(self, kind: str, vnode: Any) -> None:
        ino = getattr(getattr(vnode, "inode", None), "ino", -1)
        self.durability_points.append((kind, ino, self.pos))

    # -- workload-facing API ----------------------------------------------
    def promise(self, path: str, content: bytes) -> None:
        """``path`` was just acknowledged durable holding ``content``."""
        self.events.append(ContractEvent("promise", path, self.pos,
                                         bytes(content)))

    def dirty(self, path: str, content: bytes) -> None:
        """``path`` now logically holds ``content``, not yet synced."""
        self.events.append(ContractEvent("dirty", path, self.pos,
                                         bytes(content)))

    def forget(self, path: str) -> None:
        """Stop checking ``path`` (about to be displaced/rewritten)."""
        self.events.append(ContractEvent("forget", path, self.pos))

    def unlink_begin(self, path: str) -> None:
        """An unlink is starting: its outcome is ambiguous from the
        operation's first write until it is acknowledged."""
        self.events.append(ContractEvent("unlink_begin", path, self.pos))

    def unlinked(self, path: str) -> None:
        self.events.append(ContractEvent("unlink", path, self.pos))

    def rename_begin(self, old: str, new: str) -> None:
        """A rename is starting: the file may resolve under either name
        (link-then-unlink order guarantees at least one) until the op is
        acknowledged durable."""
        self.events.append(ContractEvent("rename_begin", old, self.pos,
                                         new_path=new))

    def renamed(self, old: str, new: str) -> None:
        self.events.append(ContractEvent("rename", old, self.pos,
                                         new_path=new))


# ---------------------------------------------------------------------------
# workloads
# ---------------------------------------------------------------------------

def _writeback(proc: Proc, path: str) -> Generator[Any, Any, None]:
    """Write-behind, as the update daemon would: push the file's dirty
    pages without waiting and without a flush — they land in the drive's
    volatile cache and stay there until something barriers."""
    vn = yield from proc.system.mount.namei(path)
    if vn.size > 0:
        yield from vn.putpage(0, vn.size, PutFlags(async_=True))


def _wl_append(proc: Proc, rec: ContractRecorder, rng: random.Random,
               p: Preset) -> Generator[Any, Any, None]:
    fds: dict[str, int] = {}
    mirror: dict[str, bytearray] = {}
    for i in range(p.files):
        path = f"/f{i}"
        fds[path] = yield from proc.creat(path)
        mirror[path] = bytearray()
    for c in range(p.chunks):
        for path in sorted(fds):
            data = rng.randbytes(p.chunk)
            # Declared dirty *before* the write issues: from this moment
            # any sector of the new version may legally reach the platter.
            mirror[path] += data
            rec.dirty(path, bytes(mirror[path]))
            yield from proc.write(fds[path], data)
            # fsync every third chunk: long enough between flushes for the
            # cache to accumulate a rich pending set, short enough that
            # promised state keeps advancing.
            if c % 3 == 2 or c == p.chunks - 1:
                yield from proc.fsync(fds[path])
                rec.promise(path, bytes(mirror[path]))
            else:
                yield from _writeback(proc, path)
    for path in sorted(fds):
        yield from proc.close(fds[path])


def _wl_overwrite(proc: Proc, rec: ContractRecorder, rng: random.Random,
                  p: Preset) -> Generator[Any, Any, None]:
    for i in range(p.files):
        path = f"/ow{i}"
        osync = i == p.files - 1  # the last file writes through O_SYNC
        fd = yield from proc.open(path, create=True, sync=osync)
        mirror = bytearray(rng.randbytes(p.chunk * p.chunks))
        yield from proc.write(fd, bytes(mirror))
        if osync:
            rec.promise(path, bytes(mirror))
        else:
            rec.dirty(path, bytes(mirror))
            yield from proc.fsync(fd)
            rec.promise(path, bytes(mirror))
        for c in range(p.chunks - 1, 0, -1):  # rewrite interior chunks
            off = c * p.chunk
            data = rng.randbytes(p.chunk)
            mirror[off:off + p.chunk] = data
            rec.dirty(path, bytes(mirror))  # in flight: old or new, by sector
            yield from proc.pwrite(fd, data, off)
            if osync:
                rec.promise(path, bytes(mirror))
            else:
                yield from _writeback(proc, path)
        if not osync:
            yield from proc.fsync(fd)
            rec.promise(path, bytes(mirror))
        yield from proc.close(fd)


def _wl_rename(proc: Proc, rec: ContractRecorder, rng: random.Random,
               p: Preset) -> Generator[Any, Any, None]:
    for i in range(p.files):
        final = f"/pub{i}"
        for gen in range(2):  # publish twice: second rename displaces
            tmp = f"/tmp{i}.{gen}"
            fd = yield from proc.creat(tmp)
            content = rng.randbytes(p.chunk * (gen + 1))
            yield from proc.write(fd, content)
            yield from proc.fsync(fd)
            rec.promise(tmp, content)
            yield from proc.close(fd)
            rec.forget(final)
            rec.rename_begin(tmp, final)
            yield from proc.rename(tmp, final)
            rec.renamed(tmp, final)


def _wl_spanning(proc: Proc, rec: ContractRecorder, rng: random.Random,
                 p: Preset) -> Generator[Any, Any, None]:
    path = "/big"
    fd = yield from proc.creat(path)
    mirror = bytearray()
    for _ in range(p.chunks):
        data = rng.randbytes(p.chunk)
        mirror += data
        rec.dirty(path, bytes(mirror))
        yield from proc.write(fd, data)
        yield from _writeback(proc, path)
    yield from proc.fsync(fd)
    rec.promise(path, bytes(mirror))
    yield from proc.close(fd)


def _wl_relocate(proc: Proc, rec: ContractRecorder, rng: random.Random,
                 p: Preset) -> Generator[Any, Any, None]:
    """The fragment-relocation durability trap, distilled.

    f0 is fsynced while its tail is a short fragment run; f1's tail sits
    in the fragments right behind it, so f0's next append relocates the
    run and frees the old fragments while the relocated data is only
    write-behind (volatile).  A third file then sweeps up the freed
    fragments and fsyncs — the flush makes *its* bytes durable in the
    fragments f0's durable inode still points at.
    """
    fds: dict[str, int] = {}
    mirror: dict[str, bytearray] = {}
    for name in ("/f0", "/f1"):
        fds[name] = yield from proc.creat(name)
        data = rng.randbytes(p.chunk)
        mirror[name] = bytearray(data)
        rec.dirty(name, data)
        yield from proc.write(fds[name], data)
        yield from proc.fsync(fds[name])
        rec.promise(name, bytes(mirror[name]))
    data = rng.randbytes(p.chunk)
    mirror["/f0"] += data
    rec.dirty("/f0", bytes(mirror["/f0"]))
    yield from proc.write(fds["/f0"], data)
    yield from _writeback(proc, "/f0")
    fd = yield from proc.creat("/g")
    data = rng.randbytes(p.chunk)
    rec.dirty("/g", data)
    yield from proc.write(fd, data)
    yield from proc.fsync(fd)
    rec.promise("/g", data)
    for name in ("/f0", "/f1"):
        yield from proc.close(fds[name])
    yield from proc.close(fd)


def _wl_smoke(proc: Proc, rec: ContractRecorder, rng: random.Random,
              p: Preset) -> Generator[Any, Any, None]:
    # A little of everything, kept small: three append files, one
    # overwritten file, one rename publish, one unlink.
    yield from _wl_append(proc, rec, rng,
                          Preset("smoke-append", "", "append", files=p.files,
                                 chunk=p.chunk, chunks=p.chunks))
    path = "/ow"
    fd = yield from proc.creat(path)
    mirror = bytearray(rng.randbytes(p.chunk * 2))
    yield from proc.write(fd, bytes(mirror))
    rec.dirty(path, bytes(mirror))
    yield from proc.fsync(fd)
    rec.promise(path, bytes(mirror))
    data = rng.randbytes(p.chunk)
    mirror[:p.chunk] = data
    rec.dirty(path, bytes(mirror))
    yield from proc.pwrite(fd, data, 0)
    yield from proc.close(fd)
    yield from _wl_rename(proc, rec, rng,
                          Preset("smoke-rename", "", "rename", files=1,
                                 chunk=p.chunk))
    rec.unlink_begin("/f0")
    yield from proc.unlink("/f0")
    rec.unlinked("/f0")


_WORKLOADS = {
    "append": _wl_append,
    "overwrite": _wl_overwrite,
    "rename": _wl_rename,
    "relocate": _wl_relocate,
    "spanning": _wl_spanning,
    "smoke": _wl_smoke,
}


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------

@dataclass
class Violation:
    """One contract breach on one distinct crash state."""

    state: str                    # canonical image hash (short)
    category: str                 # fsck_nonconvergent | remount_failed |
                                  # durable_file_missing | durable_data_lost |
                                  # sanitizer
    detail: str
    event_index: int              # crash point (journal index)
    dropped: list[str] = field(default_factory=list)
    torn: "str | None" = None
    spans: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "state": self.state, "category": self.category,
            "detail": self.detail, "event_index": self.event_index,
            "dropped": self.dropped, "torn": self.torn, "spans": self.spans,
        }


@dataclass
class CrashpointReport:
    """Everything one exploration produced (JSON-ready, deterministic)."""

    preset: str
    seed: int
    journal_events: int = 0
    contract_events: int = 0
    durability_points: int = 0
    crash_points: int = 0
    raw_states: int = 0
    distinct_states: int = 0
    fsck_repairs: int = 0
    states_truncated: bool = False
    violations: list[Violation] = field(default_factory=list)
    #: simcheck-style digest over the sorted (state hash, verdict) pairs:
    #: two runs explored the same space iff the digests match.
    digest: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> dict:
        return {
            "preset": self.preset, "seed": self.seed,
            "journal_events": self.journal_events,
            "contract_events": self.contract_events,
            "durability_points": self.durability_points,
            "crash_points": self.crash_points,
            "raw_states": self.raw_states,
            "distinct_states": self.distinct_states,
            "fsck_repairs": self.fsck_repairs,
            "states_truncated": self.states_truncated,
            "violations": [v.to_json() for v in self.violations],
            "digest": self.digest,
            "ok": self.ok,
        }


# ---------------------------------------------------------------------------
# the explorer
# ---------------------------------------------------------------------------

class _Pending:
    """A journal write event replayed into the explorer's pending list."""

    __slots__ = ("seq", "sector", "nsectors", "data", "ordered", "owner",
                 "request")

    def __init__(self, ev: Any):
        self.seq = ev.seq
        self.sector = ev.sector
        self.nsectors = ev.nsectors
        self.data = ev.data
        self.ordered = ev.ordered
        self.owner = ev.owner
        self.request = ev.request

    def describe(self) -> str:
        flag = " B_ORDER" if self.ordered else ""
        return (f"write#{self.seq} sec={self.sector}+{self.nsectors}"
                f"{flag} owner={self.owner!r}")


class _Slot:
    """Folded contract state for one declared-durable file."""

    __slots__ = ("promised", "versions", "alts", "may_be_absent")

    def __init__(self, promised: bytes, path: str):
        self.promised = promised
        self.versions: list[bytes] = []
        self.alts = [path]
        self.may_be_absent = False


class CrashpointExplorer:
    """Record one preset workload, then enumerate and verify every
    bounded-legal crash state of it."""

    def __init__(self, preset: "str | Preset" = "smoke", seed: int = 0,
                 sanitize: "bool | None" = None,
                 max_states: "int | None" = 20000,
                 window: "int | None" = None,
                 torn_limit: "int | None" = None,
                 config: "SystemConfig | None" = None):
        if isinstance(preset, str):
            try:
                preset = PRESETS[preset]
            except KeyError:
                raise ValueError(
                    f"unknown preset {preset!r} (have {sorted(PRESETS)})"
                ) from None
        self.preset = preset
        self.seed = seed
        self.sanitize = sanitize
        self.max_states = max_states
        self.window = window if window is not None else preset.window
        self.torn_limit = (torn_limit if torn_limit is not None
                           else preset.torn_limit)
        if self.window < 1:
            raise ValueError("window must be >= 1")
        base = config if config is not None else self._default_config()
        self.record_config = base.with_(
            write_cache=True, write_cache_bytes=preset.cache_bytes,
            ordered_metadata=preset.ordered_metadata)
        #: Survivors remount write-through: the crash image is durable by
        #: construction, and verification must not add volatility of its own.
        self.verify_config = base.with_(write_cache=False,
                                        ordered_metadata=False)
        #: The recording machine, kept after :meth:`run` so tests can
        #: assert on what the workload actually exercised (e.g. that the
        #: relocate preset really took the relocation-barrier path).
        self.recorded: "System | None" = None

    @staticmethod
    def _default_config() -> SystemConfig:
        from repro.faults.campaign import default_campaign_config

        return default_campaign_config()

    # -- recording ---------------------------------------------------------
    def _record(self):
        system = System(self.record_config)
        if self.sanitize is not None:
            system.sanitizer.enabled = self.sanitize
        system.mkfs()
        system.run(system.mount_fs(), name="crashpoints-mount")
        system.sync()  # quiesce: the base image below is fully durable
        system.tracer.enabled = True  # violations carry request span trees
        base = system.store.clone()   # durable image at journal start
        rec = ContractRecorder(system)
        proc = Proc(system, name="crashpoints")
        rng = random.Random(self.seed)
        workload = _WORKLOADS[self.preset.workload]
        system.run(workload(proc, rec, rng, self.preset),
                   name="crashpoints-record")
        system.sync()  # ends with a FLUSH: the journal closes drained
        # Journal/data-plane self-check: replaying every journal event over
        # the base image must reproduce the final durable store exactly.
        replay = base.clone()
        pending: list[_Pending] = []
        for ev in rec.journal:
            self._apply_event(replay, pending, ev)
        if pending or replay.digest() != system.store.digest():
            raise SimulationError(
                "write-cache journal does not reproduce the recorded "
                "store (journal/data-plane incoherence)")
        return system, rec, base

    @staticmethod
    def _apply_event(store: DiskStore, pending: list[_Pending],
                     ev: Any) -> None:
        if ev.kind == "write":
            pending.append(_Pending(ev))
        elif ev.kind == "fua":
            store.write(ev.sector, ev.data)
        elif ev.kind == "destage":
            head = pending.pop(0)
            assert head.seq == ev.seq, "journal out of order"
            store.write(head.sector, head.data)
        elif ev.kind == "flush":
            assert not pending, "flush with entries still pending"
        elif ev.kind == "drop":  # pragma: no cover - recording never cuts
            pending.clear()

    # -- legal subsets -----------------------------------------------------
    def _legal_subsets(self, pending: list[_Pending]):
        """Yield every legal destage subset as a list of entries (in cache
        order).  Epochs between B_ORDER entries allow FIFO-with-window
        reordering; barrier entries are all-or-nothing and strictly
        ordered against both sides."""
        epochs: list[tuple[bool, list[_Pending]]] = []
        for e in pending:
            if e.ordered:
                epochs.append((True, [e]))
            elif not epochs or epochs[-1][0]:
                epochs.append((False, [e]))
            else:
                epochs[-1][1].append(e)
        yield []
        prefix: list[_Pending] = []
        for barrier, epoch in epochs:
            if not barrier:
                m = len(epoch)
                for j_max in range(m):
                    kept = epoch[:j_max + 1]
                    for holes in self._hole_sets(j_max):
                        if j_max == m - 1 and not holes:
                            continue  # the full epoch: emitted as the prefix
                        subset = [e for l, e in enumerate(kept)
                                  if l not in holes]
                        yield prefix + subset
            prefix = prefix + epoch
            yield list(prefix)

    def _hole_sets(self, j_max: int):
        """All sets of dropped indices below an included ``j_max``; the
        window allows at most ``window - 1`` of them."""
        from itertools import combinations

        yield frozenset()
        for k in range(1, self.window):
            for combo in combinations(range(j_max), k):
                yield frozenset(combo)

    def _torn_candidates(self, pending: list[_Pending],
                         subset: list[_Pending]) -> list[_Pending]:
        """Entries that could legally be mid-destage after ``subset``."""
        chosen = {e.seq for e in subset}
        out = []
        for e in pending:
            if e.seq in chosen:
                continue
            if self._subset_legal(pending, chosen | {e.seq}):
                out.append(e)
            if len(out) >= self.torn_limit:
                break
        return out

    @staticmethod
    def _subset_legal_window(pending: list[_Pending], chosen: set,
                             window: int) -> bool:
        holes = 0
        barrier_blocked = False
        for e in pending:
            if e.seq in chosen:
                if barrier_blocked or holes >= window:
                    return False
                if e.ordered and holes > 0:
                    return False
            else:
                holes += 1
                if e.ordered:
                    barrier_blocked = True
        return True

    def _subset_legal(self, pending: list[_Pending], chosen: set) -> bool:
        return self._subset_legal_window(pending, chosen, self.window)

    # -- materialization ---------------------------------------------------
    @staticmethod
    def _materialize(base: DiskStore, subset: list[_Pending],
                     torn: "tuple[_Pending, int] | None") -> DiskStore:
        img = base.clone()
        for e in subset:
            img.write(e.sector, e.data)
        if torn is not None:
            e, nsec = torn
            img.write(e.sector, e.data[:nsec * base.sector_size])
        return img

    def _torn_prefixes(self, nsectors: int) -> list[int]:
        cuts = {1, nsectors // 2, nsectors - 1}
        return sorted(c for c in cuts if 0 < c < nsectors)

    # -- contract folding --------------------------------------------------
    def _fold(self, events: list[ContractEvent], index: int,
              flushes: list[int]) -> dict[str, _Slot]:
        """The durability contract in effect at crash point ``index``."""
        fua_mode = not self.record_config.ordered_metadata

        def certain(pos: int) -> bool:
            # A namespace op's metadata is durable once FUA-written (at
            # completion, so before the event was recorded) or once any
            # later flush drained its barrier entries.
            return fua_mode or any(pos <= f < index for f in flushes)

        slots: dict[str, _Slot] = {}
        for ev in events:
            if ev.pos > index:
                break
            if ev.kind == "promise":
                slots[ev.path] = _Slot(ev.content, ev.path)
            elif ev.kind == "dirty":
                slot = slots.get(ev.path)
                if slot is not None:
                    slot.versions.append(ev.content)
            elif ev.kind == "forget":
                slots.pop(ev.path, None)
            elif ev.kind == "unlink_begin":
                slot = slots.get(ev.path)
                if slot is not None:
                    slot.may_be_absent = True
            elif ev.kind == "unlink":
                if certain(ev.pos):
                    slots.pop(ev.path, None)
                # else: may_be_absent since unlink_begin covers it
            elif ev.kind == "rename_begin":
                slot = slots.get(ev.path)
                if slot is not None and ev.new_path not in slot.alts:
                    slot.alts.append(ev.new_path)
            elif ev.kind == "rename":
                slot = slots.pop(ev.path, None)
                if slot is not None:
                    if certain(ev.pos):
                        slot.alts = [ev.new_path]
                    elif ev.new_path not in slot.alts:
                        slot.alts.append(ev.new_path)
                    slots[ev.new_path] = slot
        return slots

    # -- verification ------------------------------------------------------
    def _verify_state(self, img: DiskStore, index: int,
                      slots: dict[str, _Slot]) -> tuple[list, int]:
        """fsck-repair, remount, and check the contract on one image.

        Returns (violations as (category, detail) pairs, repair count).
        """
        problems: list[tuple[str, str]] = []
        report = fsck(img, repair=True)
        verify = fsck(img)
        if not verify.clean:
            problems.append((
                "fsck_nonconvergent",
                f"{len(verify.findings)} finding(s) survive repair; "
                f"first: {verify.findings[0]}"))
            return problems, len(report.repairs)
        try:
            survivor = System.remounted(img, self.verify_config)
            if self.sanitize is not None:
                survivor.sanitizer.enabled = self.sanitize
            proc = Proc(survivor, name="crashpoints-verify")
            for path in sorted(slots):
                problems.extend(self._check_slot(survivor, proc, path,
                                                 slots[path]))
            # Quiesced, repaired: the deep sweep must find the machine and
            # the on-disk image consistent.
            survivor.sanitizer.checkpoint("crashpoint_survivor", idle=True,
                                          deep=True)
        except SanitizerError as exc:
            problems.append(("sanitizer", str(exc).split("\n")[0]))
        except (ReproError, SimulationError) as exc:
            problems.append(("remount_failed",
                             f"{type(exc).__name__}: {exc}"))
        return problems, len(report.repairs)

    def _check_slot(self, survivor: System, proc: Proc, path: str,
                    slot: _Slot) -> list[tuple[str, str]]:
        from repro.errors import FileNotFoundError_

        found = None
        size = 0
        for cand in slot.alts:
            try:
                size = survivor.run(proc.stat_size(cand),
                                    name="crashpoints-stat")
            except FileNotFoundError_:
                continue
            found = cand
            break
        if found is None:
            if slot.may_be_absent:
                return []
            return [("durable_file_missing",
                     f"{path}: no candidate of {slot.alts} survives")]
        data = survivor.run(self._read_file(proc, found, size),
                            name="crashpoints-read")
        n = len(slot.promised)
        if size < n:
            return [("durable_data_lost",
                     f"{found}: size {size} < promised {n} bytes")]
        problems = []
        for off in range(0, max(n, size), 512):
            got = data[off:off + 512]
            allowed = []
            if off < n:
                allowed.append(slot.promised[off:off + 512][:len(got)])
            for v in slot.versions:
                if off < len(v):
                    allowed.append(v[off:off + 512][:len(got)])
            if got not in allowed:
                what = ("promised" if off < n else "unsynced")
                problems.append((
                    "durable_data_lost",
                    f"{found}: sector at byte {off} matches no {what} "
                    f"version ({len(allowed)} allowed)"))
                break  # one bad sector proves the loss; keep output short
        return problems

    @staticmethod
    def _read_file(proc: Proc, path: str, length: int
                   ) -> Generator[Any, Any, bytes]:
        fd = yield from proc.open(path)
        data = b""
        if length:
            data = yield from proc.read(fd, length)
        yield from proc.close(fd)
        return data

    # -- the sweep ---------------------------------------------------------
    def run(self) -> CrashpointReport:
        system, rec, base = self._record()
        self.recorded = system
        journal = rec.journal
        flushes = [i for i, ev in enumerate(journal) if ev.kind == "flush"]
        report = CrashpointReport(preset=self.preset.name, seed=self.seed)
        report.journal_events = len(journal)
        report.contract_events = len(rec.events)
        report.durability_points = len(rec.durability_points)

        durable = base.clone()
        pending: list[_Pending] = []
        seen: dict[str, str] = {}      # image hash -> verdict
        lines: list[str] = []

        def explore_point(index: int, next_ev: Any) -> bool:
            """Enumerate crash states at journal index ``index``; returns
            False once the raw-state budget is exhausted."""
            report.crash_points += 1
            slots = None
            for subset in self._legal_subsets(pending):
                variants: list["tuple[_Pending, int] | None"] = [None]
                torn_pool = list(self._torn_candidates(pending, subset))
                if (next_ev is not None and next_ev.kind == "fua"
                        and next_ev.nsectors > 1):
                    torn_pool.append(_Pending(next_ev))
                for e in torn_pool:
                    for nsec in self._torn_prefixes(e.nsectors):
                        variants.append((e, nsec))
                for torn in variants:
                    if (self.max_states is not None
                            and report.raw_states >= self.max_states):
                        report.states_truncated = True
                        return False
                    report.raw_states += 1
                    img = self._materialize(durable, subset, torn)
                    digest = img.digest()
                    if digest in seen:
                        continue
                    report.distinct_states += 1
                    if slots is None:
                        slots = self._fold(rec.events, index, flushes)
                    problems, repairs = self._verify_state(img, index, slots)
                    report.fsck_repairs += repairs
                    verdict = ("ok" if not problems else
                               "+".join(sorted({c for c, _ in problems})))
                    seen[digest] = verdict
                    lines.append(f"{digest} {verdict}")
                    if problems:
                        kept = {e.seq for e in subset}
                        dropped = [e.describe() for e in pending
                                   if e.seq not in kept]
                        spans = []
                        for e in pending:
                            if e.seq in kept:
                                continue
                            tree = render_request(e.request)
                            if tree is not None and tree not in spans:
                                spans.append(tree)
                            if len(spans) >= 3:
                                break
                        torn_desc = None
                        if torn is not None:
                            torn_desc = (f"{torn[0].describe()} "
                                         f"torn at {torn[1]} sectors")
                        for category, detail in problems:
                            report.violations.append(Violation(
                                state=digest[:16], category=category,
                                detail=detail, event_index=index,
                                dropped=dropped, torn=torn_desc,
                                spans=spans))
            return True

        budget_ok = True
        for i, ev in enumerate(journal):
            # A flush marker changes no state: the previous point covered it.
            if budget_ok and not (i > 0 and journal[i - 1].kind == "flush"):
                budget_ok = explore_point(i, ev)
            self._apply_event(durable, pending, ev)
        if budget_ok:
            explore_point(len(journal), None)

        digest = hashlib.sha256("\n".join(sorted(lines)).encode())
        report.digest = digest.hexdigest()
        return report


def run_crashpoints(preset: str = "smoke", seed: int = 0,
                    sanitize: "bool | None" = None,
                    max_states: "int | None" = 20000,
                    json_path: "str | None" = None) -> CrashpointReport:
    """One-call entry point (the ``python -m repro crashpoints`` core)."""
    explorer = CrashpointExplorer(preset=preset, seed=seed, sanitize=sanitize,
                                  max_states=max_states)
    report = explorer.run()
    if json_path is not None:
        with open(json_path, "w") as fh:
            json.dump(report.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report
