"""Crash-consistency campaigns: seeded sweeps of power-cut points.

A campaign turns the one-off crash test (stop the engine, fsck the store)
into a systematic experiment: run a write workload, cut power at a seeded
random instant — tearing whatever write was in flight at a sector boundary
— then take the frozen durable bytes, run ``fsck`` in repair mode, verify
the repaired file system is clean, remount it, and check every byte the
workload had been *promised* was durable (fsync had returned).

Determinism: the cut instants come from ``random.Random(seed)`` over the
workload's fault-free duration, the simulation itself is deterministic,
and fsck is a pure function of the bytes — so the same seed produces
byte-identical :class:`CampaignStats` on every run.

The accounting contract:

* ``silent_corruptions`` — fsynced content missing or wrong after repair
  and remount.  This must be zero: it would mean either the disk model
  broke the stable-storage promise or fsck "repaired" live data away.
* ``data_bytes_lost`` — bytes the workload had written but that were not
  yet covered by a completed fsync when the power died.  Losing these is
  *expected* (that is what fsync is for); the stat sizes the exposure.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Any, Generator

from repro.disk.geometry import DiskGeometry
from repro.errors import ReproError
from repro.faults.plan import FaultPlan
from repro.kernel.config import SystemConfig
from repro.kernel.syscalls import Proc
from repro.kernel.system import System
from repro.sim.engine import SimulationError
from repro.sim.events import EventFailed
from repro.sim.invariants import SanitizerError
from repro.sim.stats import StatSet
from repro.sim.trace import TraceRecord
from repro.ufs.fsck import fsck
from repro.units import KB


def default_campaign_config() -> SystemConfig:
    """A small-disk configuration so dozens of boot/crash cycles stay fast."""
    return SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=120, heads=2,
                                      sectors_per_track=32))


@dataclass
class CampaignStats:
    """Aggregated results of one sweep; byte-identical for a given seed."""

    cuts: int = 0
    faults_injected: int = 0
    torn_writes: int = 0
    cuts_with_damage: int = 0
    inconsistencies_detected: int = 0
    repairs_applied: int = 0
    clean_after_repair: int = 0
    silent_corruptions: int = 0
    data_bytes_lost: int = 0

    def as_dict(self) -> "dict[str, int]":
        return asdict(self)

    def __str__(self) -> str:  # pragma: no cover - CLI convenience
        return "\n".join(f"{k:26} {v}" for k, v in self.as_dict().items())


class CrashCampaign:
    """Run the workload, cut power at ``cuts`` seeded instants, and make
    fsck answer for every inconsistency the torn writes produced."""

    def __init__(self, cuts: int = 50, seed: int = 0, nfiles: int = 10,
                 file_bytes: int = 48 * KB,
                 config: "SystemConfig | None" = None, trace: bool = False,
                 sanitize: "bool | None" = None):
        if cuts < 1:
            raise ValueError("cuts must be >= 1")
        self.cuts = cuts
        self.seed = seed
        self.nfiles = nfiles
        self.file_bytes = file_bytes
        self.config = config if config is not None else default_campaign_config()
        self.trace = trace
        #: Force the invariant sanitizer on/off; None keeps the
        #: REPRO_SANITIZE environment default.
        self.sanitize = sanitize
        self.stats = CampaignStats()
        #: The same numbers as a StatSet, for sim/stats consumers.
        self.statset = StatSet("campaign")
        self.trace_records: "list[TraceRecord]" = []
        #: One dict per cut (seeded outcome + fsck repair actions),
        #: JSON-ready; filled by :meth:`run`.
        self.records: "list[dict]" = []

    # -- the doomed workload -------------------------------------------------
    def _payload(self, i: int) -> bytes:
        return bytes((i * 37 + j * 11) % 251 for j in range(self.file_bytes))

    def _workload(self, proc: Proc, state: dict) -> Generator[Any, Any, None]:
        """Create/write/fsync/unlink churn; records what fsync promised.

        ``state['durable']`` holds path -> content for every file whose
        fsync *returned* before the cut: the write-through disk guarantees
        those bytes whatever happens next.  Everything else is at risk.
        """
        yield from proc.mkdir("/work")
        for i in range(self.nfiles):
            path = f"/work/f{i}"
            payload = self._payload(i)
            fd = yield from proc.creat(path)
            yield from proc.write(fd, payload)
            state["written"] += len(payload)
            if i % 2 == 0:
                yield from proc.fsync(fd)
                state["durable"][path] = payload
            yield from proc.close(fd)
            if i % 4 == 3:
                # Churn: removing a (never-fsynced) earlier file exercises
                # the synchronous-metadata ordering under crashes too.
                yield from proc.unlink(f"/work/f{i - 2}")
                state["durable"].pop(f"/work/f{i - 2}", None)
                state["unlinked"] += 1

    def _one_run(self, cut_time: "float | None"):
        """Boot, run the workload, (maybe) lose power.  Returns the frozen
        system, its plan, and the workload's durability bookkeeping."""
        plan = (FaultPlan(power_cut_time=cut_time)
                if cut_time is not None else None)
        state = {"durable": {}, "written": 0, "unlinked": 0, "booted_at": 0.0}
        system = System(self.config, fault_plan=plan)
        if self.sanitize is not None:
            system.sanitizer.enabled = self.sanitize
        system.mkfs()
        try:
            system.run(system.mount_fs())
            state["booted_at"] = system.now
            if self.trace:
                system.tracer.enabled = True
            proc = Proc(system)
            system.run(self._workload(proc, state), name="campaign-workload")
            system.sync()
        except SanitizerError:
            # Invariant violations are simulation bugs, never modelled
            # faults — a power cut must not bury them.
            raise
        except (ReproError, SimulationError, EventFailed):
            # The machine lost power mid-flight: expected.  (EventFailed is
            # the engine's envelope for a failed I/O reaching a path that
            # does not unwrap it, e.g. the mount-wide sync.)  The store
            # holds exactly the sectors that became durable before the cut.
            pass
        return system, plan, state

    @staticmethod
    def _read_file(proc: Proc, path: str, length: int
                   ) -> Generator[Any, Any, bytes]:
        fd = yield from proc.open(path)
        data = yield from proc.read(fd, length)
        yield from proc.close(fd)
        return data

    # -- the sweep ---------------------------------------------------------
    def run(self) -> CampaignStats:
        # Rehearsal: learn the workload's fault-free duration (and the boot
        # time) so the cut instants land inside the interesting window.
        rehearsal, _, r_state = self._one_run(None)
        # The rehearsal ran fault-free and synced: the deepest quiesce point
        # a campaign has.  The deep pass runs fsck's walkers over the store.
        rehearsal.sanitizer.checkpoint("campaign_rehearsal", idle=True,
                                       deep=True)
        t_start, t_end = r_state["booted_at"], rehearsal.now
        rng = random.Random(self.seed)
        cut_times = [rng.uniform(t_start, t_end) for _ in range(self.cuts)]

        s = self.stats
        for cut in cut_times:
            system, plan, state = self._one_run(cut)
            s.cuts += 1
            s.faults_injected += int(plan.stats["power_faults"])
            s.torn_writes += int(plan.stats["torn_writes"])

            store = system.store
            report = fsck(store, repair=True)
            s.inconsistencies_detected += len(report.findings)
            s.cuts_with_damage += int(bool(report.findings))
            s.repairs_applied += len(report.repairs)
            verify = fsck(store)
            s.clean_after_repair += int(verify.clean)

            # Remount the repaired bytes and hold fsync to its word.
            durable = state["durable"]
            survivor = System.remounted(store, self.config)
            if self.sanitize is not None:
                survivor.sanitizer.enabled = self.sanitize
            proc = Proc(survivor)
            cut_corruptions = 0
            for path in sorted(durable):
                expect = durable[path]
                try:
                    got = survivor.run(
                        self._read_file(proc, path, len(expect)),
                        name="campaign-verify")
                except SanitizerError:
                    raise
                except (ReproError, SimulationError):
                    got = None
                if got != expect:
                    cut_corruptions += 1
            s.silent_corruptions += cut_corruptions
            # The survivor is quiesced and its store fsck-repaired: a full
            # (deep) sweep must find the machine and the disk consistent.
            survivor.sanitizer.checkpoint("campaign_survivor", idle=True,
                                          deep=True)
            s.data_bytes_lost += state["written"] - sum(
                len(v) for v in durable.values())
            self.records.append({
                "cut_index": len(self.records),
                "cut_time": cut,
                "faults_injected": int(plan.stats["power_faults"]),
                "torn_writes": int(plan.stats["torn_writes"]),
                "findings": [str(f) for f in report.findings],
                "repairs": [str(r) for r in report.repairs],
                "clean_after_repair": bool(verify.clean),
                "silent_corruptions": cut_corruptions,
                "durable_files_checked": len(durable),
                "data_bytes_at_risk": state["written"] - sum(
                    len(v) for v in durable.values()),
            })
            if self.trace:
                self.trace_records.extend(system.tracer.records)
                self.trace_records.append(TraceRecord(
                    cut, "power_cut",
                    {"findings": len(report.findings),
                     "repairs": len(report.repairs),
                     "clean_after_repair": verify.clean},
                ))
        for key, value in s.as_dict().items():
            self.statset.incr(key, value)
        return s

    def to_json(self) -> dict:
        """The sweep as one JSON-ready document (stats + per-cut records)."""
        s = self.stats
        return {
            "seed": self.seed,
            "stats": s.as_dict(),
            "cuts": self.records,
            "ok": (s.silent_corruptions == 0
                   and s.clean_after_repair == s.cuts),
        }
