"""The fault plan: a deterministic, seeded description of what goes wrong.

A :class:`FaultPlan` is injected into :meth:`repro.disk.disk.RotationalDisk.
service` and consulted once per service attempt, in service order.  Because
the simulation engine is deterministic, the plan's random draws happen in a
reproducible sequence: the same seed and workload produce byte-identical
fault histories, which is what makes crash campaigns replayable.

The fault taxonomy:

* **latent bad sectors** — a fixed set of sectors that fail every media
  access with :class:`~repro.errors.MediaError` until the driver revectors
  them (``remap``), exactly like grown defects on a real drive;
* **transient failures** — each read/write independently fails with a
  configurable probability (or at scheduled trigger times) with
  :class:`~repro.errors.TransientDiskError`; an identical retry succeeds
  (unless the dice fail it again);
* **controller timeouts** — a request hangs for ``timeout_hang`` seconds
  and then fails with :class:`~repro.errors.DiskTimeoutError`;
* **power cuts** — at ``power_cut_time`` the machine loses power: a write
  in flight is torn at a sector boundary (the durable prefix is kept, the
  rest is lost), and from that instant the durable state is frozen — every
  later request fails with :class:`~repro.errors.PowerLossError` and
  nothing further reaches the backing store;
* **silent faults** — failures the interface reports as success: *lost
  writes* (acknowledged, never reach the media), *misdirected writes*
  (the bytes land at the wrong LBA), *torn tails* (a clustered write's
  tail sectors are dropped), and scheduled *bit rot* developing in place.
  None of these raise; only the integrity layer
  (:mod:`repro.integrity.checksum`) can turn them into detected events.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.errors import (
    DiskTimeoutError, MediaError, MemberDeadError, PowerLossError,
    TransientDiskError,
)
from repro.sim.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.disk.buf import Buf
    from repro.disk.store import DiskStore


class FaultKind(enum.Enum):
    """What kind of failure the plan decided to inject."""

    TRANSIENT = "transient"
    MEDIA = "media"
    TIMEOUT = "timeout"
    POWER = "power"
    #: Whole-device death (a volume member's electronics fail): every
    #: request from ``die_at`` on fails instantly, volatile cache lost.
    DEAD = "dead"


@dataclass(frozen=True)
class FaultDecision:
    """One injected fault: its kind, the exception to raise, and — for
    timeouts — how long the request hangs before the error is reported."""

    kind: FaultKind
    error: Exception
    hang: float = 0.0


class FaultPlan:
    """A seeded, deterministic schedule of disk faults.

    All probabilities are per *service attempt* (a retried request rolls the
    dice again, as a real marginal drive would).  ``decide`` must be called
    exactly once per attempt, in service order, for determinism to hold.
    """

    def __init__(self, seed: int = 0,
                 read_transient_p: float = 0.0,
                 write_transient_p: float = 0.0,
                 bad_sectors: Iterable[int] = (),
                 transient_at: Iterable[float] = (),
                 timeout_at: Iterable[float] = (),
                 timeout_hang: float = 0.25,
                 power_cut_time: "float | None" = None,
                 die_at: "float | None" = None,
                 silent_write_p: float = 0.0,
                 silent_write_at: "Iterable[tuple[float, str]]" = (),
                 misdirect_shift: int = 8,
                 bitrot_at: "Iterable[tuple[float, int, int]]" = ()):
        if not 0.0 <= read_transient_p <= 1.0:
            raise ValueError("read_transient_p must be a probability")
        if not 0.0 <= write_transient_p <= 1.0:
            raise ValueError("write_transient_p must be a probability")
        if timeout_hang < 0:
            raise ValueError("timeout_hang must be >= 0")
        if not 0.0 <= silent_write_p <= 1.0:
            raise ValueError("silent_write_p must be a probability")
        if misdirect_shift == 0:
            raise ValueError("misdirect_shift must be non-zero")
        for _, kind in silent_write_at:
            if kind not in SILENT_KINDS:
                raise ValueError(f"unknown silent fault kind {kind!r}")
        self.seed = seed
        self._rng = random.Random(seed)
        self.read_transient_p = read_transient_p
        self.write_transient_p = write_transient_p
        self.bad_sectors: set[int] = set(bad_sectors)
        self.remapped: dict[int, int] = {}  # bad sector -> spare slot
        self._transient_at = sorted(transient_at)
        self._timeout_at = sorted(timeout_at)
        self.timeout_hang = timeout_hang
        self.power_cut_time = power_cut_time
        self.powered_off = False
        self.die_at = die_at
        self.dead = False
        self.silent_write_p = silent_write_p
        self._silent_at = sorted(silent_write_at)
        self.misdirect_shift = misdirect_shift
        self._bitrot_at = sorted(bitrot_at)
        self.stats = StatSet("faults")
        self._next_spare = 0

    # -- the injection decision (RotationalDisk.service calls this) ----------
    def decide(self, buf: "Buf", now: float) -> "FaultDecision | None":
        """What, if anything, goes wrong with this service attempt."""
        if self.dead or (self.die_at is not None and now >= self.die_at):
            # Checked first (and drawing no dice): adding whole-device
            # death to a plan cannot shift any other fault's rng sequence.
            if not self.dead:
                self.dead = True
                self.stats.incr("member_deaths")
            return FaultDecision(
                FaultKind.DEAD,
                MemberDeadError(f"device died at t={self.die_at:.6f}"))
        if self.powered_off or (
            self.power_cut_time is not None and now >= self.power_cut_time
        ):
            if not self.powered_off:
                self.powered_off = True
                self.stats.incr("power_faults")
            return FaultDecision(
                FaultKind.POWER, PowerLossError("power lost; disk is dead"))
        # Scheduled one-shot faults fire on the first attempt at/after their
        # trigger time.
        if self._timeout_at and now >= self._timeout_at[0]:
            self._timeout_at.pop(0)
            self.stats.incr("timeouts")
            return FaultDecision(
                FaultKind.TIMEOUT,
                DiskTimeoutError(f"controller hung on {buf!r}"),
                hang=self.timeout_hang,
            )
        if self._transient_at and now >= self._transient_at[0]:
            self._transient_at.pop(0)
            self.stats.incr("transient_faults")
            return FaultDecision(
                FaultKind.TRANSIENT,
                TransientDiskError(f"scheduled transient fault on {buf!r}"))
        bad = self._first_bad(buf.sector, buf.nsectors)
        if bad is not None:
            self.stats.incr("media_faults")
            return FaultDecision(
                FaultKind.MEDIA,
                MediaError(f"hard error at sector {bad}", sector=bad))
        p = self.read_transient_p if buf.is_read else self.write_transient_p
        if p > 0.0 and self._rng.random() < p:
            self.stats.incr("transient_faults")
            return FaultDecision(
                FaultKind.TRANSIENT,
                TransientDiskError(f"transient {buf.op.value} failure"))
        return None

    def _first_bad(self, sector: int, nsectors: int) -> "int | None":
        """The lowest still-bad sector in [sector, sector+nsectors)."""
        hits = self.bad_sectors.intersection(range(sector, sector + nsectors))
        return min(hits) if hits else None

    # -- driver-side recovery hooks ------------------------------------------
    def remap(self, sector: int) -> "int | None":
        """Revector ``sector`` to a spare; returns the spare slot number or
        None if the sector is not in the (still-)bad set."""
        if sector not in self.bad_sectors:
            return None
        self.bad_sectors.discard(sector)
        spare = self._next_spare
        self._next_spare += 1
        self.remapped[sector] = spare
        self.stats.incr("remaps")
        return spare

    # -- power-cut tearing ----------------------------------------------------
    def torn_prefix_sectors(self, buf: "Buf", started: float, now: float) -> int:
        """Sectors of an in-flight write durable when the power died.

        The transfer is modelled as linear between its start and its would-be
        completion; the cut tears it at the sector boundary reached by then.
        """
        cut = self.power_cut_time
        assert cut is not None
        if now <= started:
            return 0
        frac = (cut - started) / (now - started)
        return max(0, min(buf.nsectors, int(buf.nsectors * frac)))

    def cuts_power_during(self, started: float, now: float) -> bool:
        """True if the power cut falls inside [started, now)."""
        cut = self.power_cut_time
        return (cut is not None and not self.powered_off
                and started <= cut < now)

    # -- silent faults --------------------------------------------------------
    def decide_silent(self, buf: "Buf", now: float) -> "str | None":
        """Does this media write fail *silently*?  Returns one of
        ``SILENT_KINDS`` or None.  Consulted in the write data plane
        (after the timing, instead of the store write); the rng is drawn
        only when ``silent_write_p`` is enabled, so existing plans keep
        their exact fault sequences."""
        if not buf.is_write:
            return None
        if self._silent_at and now >= self._silent_at[0][0]:
            _, kind = self._silent_at.pop(0)
            self.stats.incr("silent_faults")
            self.stats.incr(f"silent_{kind}")
            return kind
        if self.silent_write_p > 0.0 and self._rng.random() < self.silent_write_p:
            kind = self._rng.choice(SILENT_KINDS)
            self.stats.incr("silent_faults")
            self.stats.incr(f"silent_{kind}")
            return kind
        return None

    def apply_due_bitrot(self, store: "DiskStore", now: float) -> "list[int]":
        """Flip any scheduled latent bits whose time has come (rot
        develops in place while the machine runs).  Returns the sectors
        touched; the flip itself is silent."""
        touched: list[int] = []
        while self._bitrot_at and now >= self._bitrot_at[0][0]:
            _, sector, bit = self._bitrot_at.pop(0)
            data = bytearray(store.read(sector, 1))
            data[(bit // 8) % len(data)] ^= 1 << (bit % 8)
            store.write(sector, bytes(data))
            self.stats.incr("bitrot_flips")
            touched.append(sector)
        return touched


#: Silent write-failure kinds ``decide_silent`` can return.
SILENT_KINDS = ("lost", "misdirect", "torn_tail")

#: Offline corruption kinds ``corrupt_frag`` accepts.
CORRUPT_KINDS = ("bitrot", "zero", "torn", "misdirect")


def corrupt_frag(store: "DiskStore", region, frag: int, kind: str,
                 rng: random.Random) -> dict:
    """Corrupt one fragment in place, offline (between runs) — the latent
    errors a scrub exists to find.  ``region`` is the disk's
    :class:`~repro.integrity.checksum.IntegrityRegion` (needed only for
    geometry and, for ``"misdirect"``, to forge the record a misdirected
    write would have left: a valid CRC naming the *wrong* fragment).
    Returns a description dict for campaign reports.
    """
    from repro.units import SECTOR_SIZE

    if kind not in CORRUPT_KINDS:
        raise ValueError(f"unknown corruption kind {kind!r}")
    fs = region.frag_sectors
    sector = frag * fs
    size = fs * SECTOR_SIZE
    if kind == "bitrot":
        data = bytearray(store.read(sector, fs))
        for _ in range(1 + rng.randrange(3)):
            bit = rng.randrange(size * 8)
            data[bit // 8] ^= 1 << (bit % 8)
        store.write(sector, bytes(data))
    elif kind == "zero":
        store.write(sector, bytes(size))
    elif kind == "torn":
        # A torn tail: the fragment's last sector holds stale garbage.
        tail = bytes(rng.randrange(256) for _ in range(SECTOR_SIZE))
        store.write(sector + fs - 1, tail)
    elif kind == "misdirect":
        garbage = bytes(rng.randrange(256) for _ in range(size))
        store.write(sector, garbage)
        region.forge_misdirect(frag, garbage)
    return {"frag": frag, "kind": kind}
