"""Fault injection: deterministic disk-fault plans and crash campaigns.

The fault model lives in two layers:

* :class:`FaultPlan` — a seeded schedule of disk faults (latent bad
  sectors, transient failures, controller timeouts, power cuts) injected
  into :class:`repro.disk.disk.RotationalDisk`; the driver's recovery
  machinery (retries, backoff, bad-block remapping, split-retry of
  coalesced clusters) is exercised against it.
* :class:`CrashCampaign` — a seeded sweep of power-cut points over a write
  workload, asserting that fsck detects and repairs every torn-write
  inconsistency and that fsync's durability promise is never broken.
"""

from repro.faults.campaign import (
    CampaignStats, CrashCampaign, default_campaign_config,
)
from repro.faults.plan import FaultDecision, FaultKind, FaultPlan

__all__ = [
    "CampaignStats",
    "CrashCampaign",
    "FaultDecision",
    "FaultKind",
    "FaultPlan",
    "default_campaign_config",
]
