"""Fault injection: deterministic disk and network fault plans and campaigns.

The fault model lives in two layers per medium:

* :class:`FaultPlan` — a seeded schedule of disk faults (latent bad
  sectors, transient failures, controller timeouts, power cuts) injected
  into :class:`repro.disk.disk.RotationalDisk`; the driver's recovery
  machinery (retries, backoff, bad-block remapping, split-retry of
  coalesced clusters) is exercised against it.
* :class:`CrashCampaign` — a seeded sweep of power-cut points over a write
  workload, asserting that fsck detects and repairs every torn-write
  inconsistency and that fsync's durability promise is never broken.
* :class:`MirrorKillCampaign` — a seeded sweep of mirror-member deaths
  over a ``mirror:2`` volume, asserting degraded service, zero
  acknowledged loss from the survivor alone, and byte-identical members
  after resync.
* :class:`NetFaultPlan` — the network twin: a seeded schedule of datagram
  drops, duplicates, corruption, reordering, latency spikes, link
  partitions, and server crash/reboot windows injected into
  :class:`repro.nfs.net.Network`; the NFS client's retransmission and the
  server's duplicate-request cache are exercised against it.
* :class:`NetCampaign` — a seeded sweep of network-fault schedules over an
  NFS create/write/fsync/remove workload, asserting no acknowledged write
  is ever lost, mutations stay exactly-once, and corrupt bytes never reach
  the client's page cache.
* :class:`CrashpointExplorer` — the exhaustive sibling of CrashCampaign:
  records a workload over a volatile write cache, then enumerates every
  bounded-legal crash state (cache subsets × torn destages) and verifies
  the durability contract on each distinct image.
"""

from repro.faults.campaign import (
    CampaignStats, CrashCampaign, default_campaign_config,
)
from repro.faults.crashpoints import (
    CrashpointExplorer, CrashpointReport, PRESETS, run_crashpoints,
)
from repro.faults.memberkill import (
    MemberKillStats, MirrorKillCampaign, default_memberkill_config,
)
from repro.faults.netcampaign import NetCampaign, NetCampaignStats
from repro.faults.netplan import NetDecision, NetFaultPlan
from repro.faults.plan import (
    CORRUPT_KINDS, SILENT_KINDS, FaultDecision, FaultKind, FaultPlan,
    corrupt_frag,
)

__all__ = [
    "CORRUPT_KINDS",
    "SILENT_KINDS",
    "corrupt_frag",
    "CampaignStats",
    "CrashCampaign",
    "CrashpointExplorer",
    "CrashpointReport",
    "PRESETS",
    "run_crashpoints",
    "FaultDecision",
    "FaultKind",
    "FaultPlan",
    "MemberKillStats",
    "MirrorKillCampaign",
    "default_memberkill_config",
    "NetCampaign",
    "NetCampaignStats",
    "NetDecision",
    "NetFaultPlan",
    "default_campaign_config",
]
