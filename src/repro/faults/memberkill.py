"""Mirror-member-death campaigns: seeded kills of one RAID-1 member.

The crash campaigns answer for torn writes and lossy wires; this one makes
the mirror answer for a *dead disk*.  Each seeded run boots a ``mirror:2``
volume with a volatile write cache and checksums, schedules one member to
die early in the run (:class:`~repro.faults.plan.FaultPlan` ``die_at``),
then drives a create/write/fsync workload through the death and verifies
the redundancy invariants that make a mirror worth its second disk:

* **the kill fires** — the victim member is marked failed mid-workload
  (an inert schedule would make the whole sweep vacuous);
* **degraded service** — after the death, every acknowledged (fsynced)
  file reads back byte-exact through the degraded volume, and writes keep
  succeeding on the survivor;
* **blame lands on the victim** — the victim's per-member health records
  the failures; the survivor's health stays clean;
* **zero acknowledged loss** — a clone of the *survivor's* store, booted
  as a plain single-disk machine, passes fsck clean and serves every
  acknowledged byte (the survivor alone is a complete, consistent image);
* **resync converges** — after the sweep the dead member is resynced from
  the survivor and both stores end byte-identical (digest equality), with
  the copied range verified against the integrity region;
* **the repaired machine is sane** — a deep sanitizer checkpoint and an
  fsck of the logical volume both come back clean.

Determinism: victim choice, death time, and file sizes all derive from
``random.Random(seed)``, and the engine is deterministic — the same seed
produces the same kill and the same verdict every time.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Any

from repro.disk.geometry import DiskGeometry
from repro.faults.plan import FaultPlan
from repro.kernel.config import SystemConfig
from repro.kernel.syscalls import Proc
from repro.kernel.system import System
from repro.sim.stats import StatSet
from repro.ufs.fsck import fsck
from repro.units import KB


def default_memberkill_config() -> SystemConfig:
    """A small mirrored machine so dozens of kill/resync cycles stay fast."""
    return SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=120, heads=2,
                                      sectors_per_track=32),
        layout="mirror:2", write_cache=True, checksums=True)


@dataclass
class MemberKillStats:
    """Aggregated results of one sweep; byte-identical for a given seed."""

    runs: int = 0
    kills: int = 0
    acked_files: int = 0
    acked_bytes: int = 0
    degraded_files: int = 0
    resync_sectors: int = 0
    # -- invariant violations (all must stay zero) -------------------------
    inert_kills: int = 0
    lost_acked_files: int = 0
    degraded_read_failures: int = 0
    health_misattributions: int = 0
    survivor_fsck_failures: int = 0
    resync_mismatches: int = 0
    post_resync_failures: int = 0

    def as_dict(self) -> "dict[str, int]":
        return asdict(self)

    @property
    def ok(self) -> bool:
        """True when every redundancy invariant held across the sweep."""
        return (self.inert_kills == 0
                and self.lost_acked_files == 0
                and self.degraded_read_failures == 0
                and self.health_misattributions == 0
                and self.survivor_fsck_failures == 0
                and self.resync_mismatches == 0
                and self.post_resync_failures == 0)

    def __str__(self) -> str:  # pragma: no cover - CLI convenience
        return "\n".join(f"{k:26} {v}" for k, v in self.as_dict().items())


class MirrorKillCampaign:
    """Sweep seeded mirror-member deaths and make the redundancy answer
    for every acknowledged byte."""

    def __init__(self, seeds: int = 10, base_seed: int = 0,
                 max_files: int = 24,
                 config: "SystemConfig | None" = None,
                 sanitize: "bool | None" = None):
        if seeds < 1:
            raise ValueError("seeds must be >= 1")
        self.seeds = seeds
        self.base_seed = base_seed
        self.max_files = max_files
        self.config = (config if config is not None
                       else default_memberkill_config())
        if not self.config.layout.startswith("mirror"):
            raise ValueError("memberkill needs a mirror layout")
        #: Force the invariant sanitizer on/off for every machine of the
        #: sweep; None keeps the REPRO_SANITIZE environment default.
        self.sanitize = sanitize
        self.stats = MemberKillStats()
        #: The same numbers as a StatSet, for sim/stats consumers.
        self.statset = StatSet("memberkill")
        #: One dict per seeded run (kill schedule + verdict), JSON-ready.
        self.records: list[dict[str, Any]] = []

    # -- one seeded run ----------------------------------------------------
    def _run_one(self, seed: int) -> dict[str, Any]:
        rng = random.Random(seed)
        victim_idx = rng.randrange(2)
        die_at = 0.02 + rng.random() * 0.08
        plans = [None, None]
        plans[victim_idx] = FaultPlan(seed=seed, die_at=die_at)
        system = System.booted(self.config, fault_plan=plans)
        if self.sanitize is not None:
            system.sanitizer.enabled = self.sanitize
        proc = Proc(system, name=f"kill{seed}")
        volume = system.volume
        victim = volume.members[victim_idx]
        survivor = volume.members[1 - victim_idx]

        record: dict[str, Any] = {
            "seed": seed, "victim": victim_idx, "die_at": die_at,
        }
        acked: dict[str, bytes] = {}
        degraded_acked = 0

        def put(path: str, payload: bytes):
            fd = yield from proc.creat(path)
            yield from proc.write(fd, payload)
            yield from proc.fsync(fd)
            yield from proc.close(fd)

        # Write+fsync files until the victim dies (then a few more, to
        # exercise degraded writes), every one acknowledged.
        for i in range(self.max_files):
            size = rng.choice((8, 16, 24, 32)) * KB
            payload = bytes([(seed + i) & 0xFF]) * size
            path = f"/k{i}"
            before = victim.failed
            system.run(put(path, payload), name=f"put{i}")
            acked[path] = payload
            if before:
                degraded_acked += 1
            if victim.failed and degraded_acked >= 3:
                break
        self.stats.acked_files += len(acked)
        self.stats.acked_bytes += sum(len(v) for v in acked.values())
        self.stats.degraded_files += degraded_acked
        record["acked_files"] = len(acked)
        record["degraded_files"] = degraded_acked

        record["killed"] = victim.failed
        if not victim.failed:
            self.stats.inert_kills += 1
            return record
        self.stats.kills += 1

        # Blame: the victim's health took the failures, not the survivor's.
        if victim.health.failures == 0 or survivor.health.failures != 0:
            self.stats.health_misattributions += 1
            record["health"] = (victim.health.failures,
                                survivor.health.failures)

        # Degraded reads: every acknowledged byte through the live mirror.
        def get(path: str) -> "Any":
            fd = yield from proc.open(path)
            data = b""
            while True:
                chunk = yield from proc.read(fd, 32 * KB)
                if not chunk:
                    break
                data += chunk
            yield from proc.close(fd)
            return data

        bad_reads = 0
        for path, payload in acked.items():
            back = system.run(get(path), name=f"get{path}")
            if back != payload:
                bad_reads += 1
        if bad_reads:
            self.stats.degraded_read_failures += bad_reads
            record["degraded_read_failures"] = bad_reads

        # Zero acknowledged loss: the survivor alone, remounted as a plain
        # single-disk machine, is a complete consistent image.
        system.sync()
        clone = survivor.store.clone()
        if not fsck(clone).clean:
            self.stats.survivor_fsck_failures += 1
            record["survivor_fsck"] = "dirty"
        solo = System.remounted(
            clone, self.config.with_(layout="single", write_cache=False))
        if self.sanitize is not None:
            solo.sanitizer.enabled = self.sanitize
        sproc = Proc(solo, name="survivor")
        lost = 0
        for path, payload in acked.items():
            fd = solo.run(sproc.open(path), name="open")

            def read_all(fd=fd):
                data = b""
                while True:
                    chunk = yield from sproc.read(fd, 32 * KB)
                    if not chunk:
                        break
                    data += chunk
                yield from sproc.close(fd)
                return data

            if solo.run(read_all(), name="read") != payload:
                lost += 1
        if lost:
            self.stats.lost_acked_files += lost
            record["lost_acked_files"] = lost

        # Resync the dead member from the survivor: byte-identical end
        # state, verified against the integrity region.
        report = system.run(volume.resync(victim_idx), name="resync")
        record["resync"] = report
        self.stats.resync_sectors += report["sectors_copied"]
        if not report["identical"] or report["verify_failures"]:
            self.stats.resync_mismatches += 1

        # The repaired machine answers a deep sanitize and an fsck.
        post_ok = fsck(system.store).clean
        try:
            system.sanitizer.checkpoint("memberkill_post", idle=True,
                                        deep=True)
        except Exception:  # pragma: no cover - sanitizer violation
            post_ok = False
        if not post_ok:
            self.stats.post_resync_failures += 1
            record["post_resync"] = "dirty"
        return record

    # -- the sweep ---------------------------------------------------------
    def run(self) -> MemberKillStats:
        for seed in range(self.base_seed, self.base_seed + self.seeds):
            self.stats.runs += 1
            self.records.append(self._run_one(seed))
        for key, value in self.stats.as_dict().items():
            self.statset.incr(key, value)
        return self.stats

    def to_json(self) -> dict:
        """The sweep as one JSON-ready document (stats + per-seed records)."""
        return {
            "base_seed": self.base_seed,
            "stats": self.stats.as_dict(),
            "runs": self.records,
            "ok": self.stats.ok,
        }
