"""Lost-write campaigns: seeded sweeps of network faults over NFS.

The disk-side :class:`~repro.faults.campaign.CrashCampaign` makes fsck
answer for torn writes; the network campaign makes the hardened RPC layer
answer for a lossy wire.  Each seeded run builds a client/server world
whose network drops, duplicates, corrupts, reorders, and delays messages
(and may partition the link or crash/reboot the server), drives a
create/write/fsync/remove workload from the client, then stops the faults
and verifies the invariants that make NFS serving trustworthy:

* **no lost acknowledged writes** — every byte a returned fsync covered
  reads back intact after the faults clear (WRITE is v2-stable, COMMIT is
  the barrier; a hard mount may retry for a long time but may not lie);
* **exactly-once mutations** — retransmitted CREATE/WRITE/REMOVE must be
  answered from the server's duplicate-request cache, never re-executed
  (checked against the server's execution accounting; runs whose plan
  crashes the server are exempt, since a cold DRC is exactly the exposure
  the REMOVE heuristic exists for);
* **no corrupted bytes served** — a damaged READ reply must die at the
  checksum, never in the client's page cache (checked by content);
* **removed means removed** — every REMOVEd path is ENOENT afterwards;
* **soft mounts fail fast** — under a full partition a soft mount raises
  ETIMEDOUT (mirrored in ``proc.errno``) instead of hanging;
* **determinism** — the base seed is run twice and must produce an
  identical stats fingerprint, fault schedule included.

Determinism: each run's fault intensities and windows derive from
``random.Random(seed)``, the plan's per-message draws are consumed in send
order, and the engine is deterministic — so the same seed produces the
same fault history and the same verdict, every time.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Any, Generator

from repro.errors import FileNotFoundError_, ReproError, RpcTimeoutError
from repro.faults.campaign import default_campaign_config
from repro.faults.netplan import NetFaultPlan
from repro.kernel.config import SystemConfig
from repro.kernel.syscalls import Proc
from repro.nfs.world import build_world
from repro.sim.stats import StatSet
from repro.units import KB
from repro.vfs.vnode import RW


@dataclass
class NetCampaignStats:
    """Aggregated results of one sweep; byte-identical for a given seed."""

    runs: int = 0
    rpcs: int = 0
    retransmits: int = 0
    rpc_timeouts: int = 0
    rtt_samples: int = 0
    drops_injected: int = 0
    duplicates_injected: int = 0
    corruptions_injected: int = 0
    reorders_injected: int = 0
    partition_drops: int = 0
    server_reboots: int = 0
    drc_hits: int = 0
    corrupt_replies_dropped: int = 0
    corrupt_requests_rejected: int = 0
    acked_files: int = 0
    acked_bytes: int = 0
    removes: int = 0
    # -- invariant violations (all must stay zero) -------------------------
    lost_acked_writes: int = 0
    corrupt_cache_serves: int = 0
    duplicate_side_effects: int = 0
    remove_violations: int = 0
    soft_timeout_failures: int = 0
    determinism_failures: int = 0

    def as_dict(self) -> "dict[str, int]":
        return asdict(self)

    @property
    def ok(self) -> bool:
        """True when every invariant held across the sweep."""
        return (self.lost_acked_writes == 0
                and self.corrupt_cache_serves == 0
                and self.duplicate_side_effects == 0
                and self.remove_violations == 0
                and self.soft_timeout_failures == 0
                and self.determinism_failures == 0)

    def __str__(self) -> str:  # pragma: no cover - CLI convenience
        return "\n".join(f"{k:26} {v}" for k, v in self.as_dict().items())


class NetCampaign:
    """Sweep seeded network-fault schedules over an NFS workload and make
    the RPC hardening answer for every acknowledged byte."""

    def __init__(self, seeds: int = 20, base_seed: int = 0, nfiles: int = 5,
                 file_bytes: int = 16 * KB,
                 config: "SystemConfig | None" = None,
                 sanitize: "bool | None" = None):
        if seeds < 1:
            raise ValueError("seeds must be >= 1")
        if nfiles < 2:
            raise ValueError("nfiles must be >= 2")
        self.seeds = seeds
        self.base_seed = base_seed
        self.nfiles = nfiles
        self.file_bytes = file_bytes
        self.config = config if config is not None else default_campaign_config()
        #: Force the invariant sanitizer on/off for both machines of every
        #: world; None keeps the REPRO_SANITIZE environment default.
        self.sanitize = sanitize
        self.stats = NetCampaignStats()
        #: The same numbers as a StatSet, for sim/stats consumers.
        self.statset = StatSet("netcampaign")
        self._window: "tuple[float, float] | None" = None
        #: One dict per seeded run (fault schedule + verdict), JSON-ready;
        #: filled by :meth:`run`.
        self.records: "list[dict]" = []

    # -- the workload --------------------------------------------------------
    def _payload(self, i: int) -> bytes:
        return bytes((i * 41 + j * 13) % 251 for j in range(self.file_bytes))

    def _workload(self, proc: Proc, state: dict) -> Generator[Any, Any, None]:
        """Create/write/fsync/remove churn over the wire.

        ``state['durable']`` holds path -> content for every file whose
        fsync *returned*: v2-stable WRITEs plus a COMMIT barrier mean those
        bytes are on the server's disk whatever the wire does next.
        """
        for i in range(self.nfiles):
            path = f"/r{i}"
            payload = self._payload(i)
            fd = yield from proc.creat(path)
            yield from proc.write(fd, payload)
            yield from proc.fsync(fd)
            state["durable"][path] = payload
            yield from proc.close(fd)
            if i % 3 == 2:
                # Remove an earlier (already durable) file: REMOVE is the
                # non-idempotent op the duplicate-request cache exists for.
                victim = f"/r{i - 1}"
                yield from proc.unlink(victim)
                state["durable"].pop(victim, None)
                state["removed"].append(victim)

    # -- one seeded run ------------------------------------------------------
    def _plan_for(self, seed: int) -> NetFaultPlan:
        """Derive one seed's fault schedule (intensities and windows)."""
        rng = random.Random(seed)
        t0, t1 = self._window if self._window is not None else (0.01, 0.5)
        partitions = []
        if rng.random() < 0.5:
            start = rng.uniform(t0, t1)
            partitions.append((start, start + rng.uniform(0.05, 0.3)))
        crashes = []
        if rng.random() < 0.3:
            crashes.append(rng.uniform(t0, t1))
        return NetFaultPlan(
            seed=seed,
            drop_p=rng.uniform(0.02, 0.15),
            duplicate_p=rng.uniform(0.0, 0.08),
            corrupt_p=rng.uniform(0.0, 0.08),
            reorder_p=rng.uniform(0.0, 0.10),
            spike_p=rng.uniform(0.0, 0.03),
            partitions=partitions,
            server_crash_at=crashes,
            server_reboot_delay=rng.uniform(0.1, 0.3),
        )

    def _one_run(self, plan: "NetFaultPlan | None") -> dict:
        """Build a world, run the doomed workload, verify, fingerprint."""
        client, server_sys, mount = build_world(
            server_config=self.config, fault_plan=plan, timeo=0.3)
        if self.sanitize is not None:
            client.sanitizer.enabled = self.sanitize
            server_sys.sanitizer.enabled = self.sanitize
        # The client machine has no UFS mount; its write throttles live on
        # the NFS vnodes.  Teach its sanitizer where to find them.
        client.sanitizer.throttle_sources.append(
            lambda: ((f"nfs handle {h}", vn.throttle)
                     for h, vn in mount._vnodes.items()))
        state: dict = {"durable": {}, "removed": []}
        proc = Proc(client, mount=mount)
        start = client.now
        client.run(self._workload(proc, state), name="netcampaign-workload")
        result = {
            "state": state, "mount": mount, "server": mount.server,
            "plan": plan, "window": (start, client.now),
            "lost": 0, "corrupt_serves": 0, "remove_violations": 0,
        }
        if plan is not None:
            plan.disabled = True  # faults clear; now the promises come due
            self._verify(client, mount, state, result)
        result["fingerprint"] = self._fingerprint(result)
        # End-of-run quiesce: both machines idle, the wire clean.  The
        # server syncs first so the deep pass can hold fsck to its word.
        server_sys.sync()
        client.sanitizer.checkpoint("netcampaign_run", idle=True)
        server_sys.sanitizer.checkpoint("netcampaign_run", idle=True,
                                        deep=True)
        return result

    def _verify(self, client, mount, state: dict, result: dict) -> None:
        """Read every acknowledged byte back over the (now clean) wire."""
        for path in sorted(state["durable"]):
            expect = state["durable"][path]
            try:
                vn = client.run(mount.namei(path), name="netcampaign-verify")
                # Purge the client cache so the read really crosses the wire
                # (and would expose any corrupt bytes that snuck into it).
                client.pagecache.vnode_invalidate(vn)
                got = client.run(vn.rdwr(RW.READ, 0, len(expect)),
                                 name="netcampaign-verify")
            except ReproError:
                got = None
            if got is None or len(got) != len(expect):
                result["lost"] += 1
            elif got != expect:
                result["corrupt_serves"] += 1
        for path in state["removed"]:
            try:
                client.run(mount.namei(path), name="netcampaign-verify")
                result["remove_violations"] += 1  # should have been ENOENT
            except FileNotFoundError_:
                pass

    @staticmethod
    def _fingerprint(result: dict) -> "tuple[Any, ...]":
        """Everything a replay of the same seed must reproduce exactly."""
        plan = result["plan"]
        return (
            tuple(sorted(result["mount"].stats.as_dict().items())),
            tuple(sorted(result["server"].stats.as_dict().items())),
            tuple(sorted(plan.stats.as_dict().items())) if plan else (),
            result["lost"], result["corrupt_serves"],
            result["remove_violations"], result["window"],
        )

    # -- the soft-mount probe --------------------------------------------------
    def _soft_probe(self) -> bool:
        """A soft mount under a full partition must fail fast with
        ETIMEDOUT in ``proc.errno`` — never hang."""
        plan = NetFaultPlan()
        client, _server, mount = build_world(
            server_config=self.config, fault_plan=plan,
            soft=True, timeo=0.2, retrans=3)
        # The partition starts only after boot + mount activation (which
        # share the engine clock), so the mount itself comes up clean.
        plan.partitions = [(client.now + 0.01, 1e9)]
        proc = Proc(client, mount=mount)

        def attempt():
            yield from proc.creat("/doomed")

        try:
            client.run(attempt(), name="netcampaign-soft")
        except RpcTimeoutError:
            return proc.errno == "ETIMEDOUT"
        return False

    # -- the sweep ---------------------------------------------------------
    def run(self) -> NetCampaignStats:
        # Rehearsal: learn the workload's fault-free span so partitions and
        # crash windows land inside the interesting region.
        rehearsal = self._one_run(None)
        self._window = rehearsal["window"]

        s = self.stats
        seeds = [self.base_seed + i for i in range(self.seeds)]
        for i, seed in enumerate(seeds):
            result = self._one_run(self._plan_for(seed))
            if i == 0:
                # Replay the first seed: same seed, same verdict, byte for
                # byte — otherwise no campaign finding is diagnosable.
                replay = self._one_run(self._plan_for(seed))
                if replay["fingerprint"] != result["fingerprint"]:
                    s.determinism_failures += 1
            s.runs += 1
            mstats, srv = result["mount"].stats, result["server"].stats
            plan = result["plan"]
            s.rpcs += int(mstats["rpcs"])
            s.retransmits += int(mstats["retransmits"])
            s.rpc_timeouts += int(mstats["rpc_timeouts"])
            s.rtt_samples += int(mstats["rtt_samples"])
            s.corrupt_replies_dropped += int(mstats["corrupt_replies_dropped"])
            s.drops_injected += int(plan.stats["drops"])
            s.duplicates_injected += int(plan.stats["duplicates"])
            s.corruptions_injected += int(plan.stats["corrupts"])
            s.reorders_injected += int(plan.stats["reorders"])
            s.partition_drops += int(plan.stats["partition_drops"])
            s.server_reboots += int(srv["reboots"])
            s.drc_hits += int(srv["drc_hits"])
            s.corrupt_requests_rejected += int(srv["corrupt_requests_rejected"])
            state = result["state"]
            s.acked_files += len(state["durable"])
            s.acked_bytes += sum(len(v) for v in state["durable"].values())
            s.removes += len(state["removed"])
            s.lost_acked_writes += result["lost"]
            s.corrupt_cache_serves += result["corrupt_serves"]
            s.remove_violations += result["remove_violations"]
            if not plan.server_crash_at:
                # With no reboot the DRC must make every retransmitted
                # mutation exactly-once; after a cold start re-execution is
                # possible by design (content checks above still apply).
                s.duplicate_side_effects += int(srv["duplicate_executions"])
            self.records.append({
                "seed": seed,
                "drops": int(plan.stats["drops"]),
                "duplicates": int(plan.stats["duplicates"]),
                "corruptions": int(plan.stats["corrupts"]),
                "reorders": int(plan.stats["reorders"]),
                "partition_drops": int(plan.stats["partition_drops"]),
                "server_reboots": int(srv["reboots"]),
                "retransmits": int(mstats["retransmits"]),
                "rpc_timeouts": int(mstats["rpc_timeouts"]),
                "drc_hits": int(srv["drc_hits"]),
                "acked_files": len(state["durable"]),
                "removes": len(state["removed"]),
                "lost_acked_writes": result["lost"],
                "corrupt_cache_serves": result["corrupt_serves"],
                "remove_violations": result["remove_violations"],
            })
        if not self._soft_probe():
            s.soft_timeout_failures += 1
        for key, value in s.as_dict().items():
            self.statset.incr(key, value)
        return s

    def to_json(self) -> dict:
        """The sweep as one JSON-ready document (stats + per-seed records)."""
        return {
            "base_seed": self.base_seed,
            "stats": self.stats.as_dict(),
            "runs": self.records,
            "ok": self.stats.ok,
        }
