"""End-to-end data integrity: per-fragment checksums, scrubbing, repair.

* :mod:`repro.integrity.checksum` — the on-disk integrity region: a table
  of self-describing per-fragment records (CRC, fragment address,
  generation, owner) plus replicas of the superblock and cylinder-group
  headers, stamped on every write and verified on every read.
* :mod:`repro.integrity.scrub` — the background scrubber and its paced
  daemon: walk the stamped fragments, detect latent corruption, repair
  via the replica/page-cache ladder, mark the rest bad.
* :mod:`repro.integrity.campaign` — ``python -m repro scrubcampaign``:
  seeded silent-corruption injection with deterministic
  detect/repair/unrepairable accounting.
"""

from repro.integrity.checksum import (
    INTEGRITY_MAGIC,
    RECORD_SIZE,
    IntegrityRegion,
    Record,
)
from repro.integrity.scrub import ScrubDaemon, Scrubber, ScrubReport
from repro.integrity.campaign import (
    ScrubCampaign,
    default_scrub_config,
    run_scrubcampaign,
)

__all__ = [
    "INTEGRITY_MAGIC",
    "RECORD_SIZE",
    "IntegrityRegion",
    "Record",
    "Scrubber",
    "ScrubDaemon",
    "ScrubReport",
    "ScrubCampaign",
    "default_scrub_config",
    "run_scrubcampaign",
]
