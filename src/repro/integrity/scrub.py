"""Background scrub: find latent corruption before a reader does.

A latent error — bit rot, a misdirected or lost write — costs nothing
until the day the file is read, which is exactly when the backup that
could have repaired it has aged out.  The scrubber walks every stamped
fragment through the *real* I/O stack (READ bufs through the driver, so
scans compete for the disk and are visible in traces and request
accounting), verifies each against its integrity record, and climbs a
repair ladder for every mismatch:

1. **replica** — superblock / cg-header fragments have a mirrored copy
   in the integrity region, refreshed on every stamp; if the mirror's
   CRC matches the record, rewrite from it.
2. **page cache** — data fragments name their owner ``(inode, lbn,
   offset)``; if that file is live and the block is cached (clean *or*
   dirty — the cache is upstream of the corruption, never clobber it),
   rewrite the fragment from the in-memory copy.  A block-pointer check
   guards against stale attribution after the block was reallocated.
3. **give up** — mark the record BAD so later passes skip it; readers
   get EIO until the fragment is rewritten (which clears the flag).

Repairs are FUA writes through the driver: they take simulated time,
restamp the record (owner preserved), and are durable on completion.

:class:`ScrubDaemon` paces this as a background task: one batch per
timer tick, skipping ticks while foreground I/O is in flight, and
running a sanitizer checkpoint after each completed pass.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any, Generator

from repro.disk.buf import Buf, BufOp
from repro.errors import DiskError, InvalidArgumentError
from repro.sim.events import EventFailed
from repro.sim.stats import StatSet
from repro.ufs.ondisk import NDADDR
from repro.units import MS

if TYPE_CHECKING:  # pragma: no cover
    from repro.integrity.checksum import IntegrityRegion, Record
    from repro.kernel.system import System


class ScrubReport:
    """Cumulative outcome of one scrubber's passes."""

    __slots__ = (
        "frags_scanned", "detected", "repaired", "repaired_from_replica",
        "repaired_from_cache", "repaired_from_mirror", "unrepairable",
        "passes", "details",
    )

    def __init__(self) -> None:
        self.frags_scanned = 0
        self.detected = 0
        self.repaired = 0
        self.repaired_from_replica = 0
        self.repaired_from_cache = 0
        self.repaired_from_mirror = 0
        self.unrepairable = 0
        self.passes = 0
        #: One dict per detected fragment: frag, reason, outcome, source.
        self.details: list[dict[str, Any]] = []

    def as_dict(self) -> dict[str, Any]:
        return {
            "frags_scanned": self.frags_scanned,
            "detected": self.detected,
            "repaired": self.repaired,
            "repaired_from_replica": self.repaired_from_replica,
            "repaired_from_cache": self.repaired_from_cache,
            "repaired_from_mirror": self.repaired_from_mirror,
            "unrepairable": self.unrepairable,
            "passes": self.passes,
            "details": list(self.details),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ScrubReport scanned={self.frags_scanned} "
            f"detected={self.detected} repaired={self.repaired} "
            f"unrepairable={self.unrepairable} passes={self.passes}>"
        )


def _contiguous_runs(frags: "list[int]") -> "list[tuple[int, int]]":
    """Split a sorted fragment list into inclusive (start, end) runs."""
    runs: list[tuple[int, int]] = []
    start = prev = frags[0]
    for frag in frags[1:]:
        if frag == prev + 1:
            prev = frag
            continue
        runs.append((start, prev))
        start = prev = frag
    runs.append((start, prev))
    return runs


class Scrubber:
    """Scans stamped fragments and repairs what it can.

    ``scrub_now()`` runs one full pass; ``scrub_tick()`` advances one
    batch (the daemon's unit of work).  Both throttle against the
    request registry so scrubbing yields to foreground I/O.
    """

    def __init__(self, system: "System", batch_frags: int = 64,
                 inflight_limit: int = 2, pace: float = 2 * MS):
        if system.disk.integrity is None:
            raise InvalidArgumentError(
                "scrubber requires an attached integrity region "
                "(mkfs with checksums=True, or tunefs)"
            )
        if batch_frags < 1:
            raise InvalidArgumentError("batch_frags must be >= 1")
        self.system = system
        self.engine = system.engine
        self.batch_frags = batch_frags
        self.inflight_limit = inflight_limit
        self.pace = pace
        self.report = ScrubReport()
        self.stats = StatSet("scrub")
        self._cursor = 0

    @property
    def region(self) -> "IntegrityRegion":
        region = self.system.disk.integrity
        assert region is not None
        return region

    # -- entry points ------------------------------------------------------
    def scrub_now(self) -> Generator[Any, Any, ScrubReport]:
        """One full pass over every stamped fragment; returns the report."""
        frags = self.region.stamped_frags()
        for i in range(0, len(frags), self.batch_frags):
            yield from self._throttle()
            yield from self._scan_batch(frags[i:i + self.batch_frags])
        self.report.passes += 1
        self.stats.incr("passes")
        return self.report

    def scrub_tick(self) -> Generator[Any, Any, bool]:
        """Advance one batch from the rolling cursor.

        Returns True when this tick completed a full pass (the cursor
        wrapped) — the daemon's cue to checkpoint the sanitizer.
        """
        frags = self.region.stamped_frags()
        if not frags:
            return False
        if self._cursor >= len(frags):
            self._cursor = 0
        batch = frags[self._cursor:self._cursor + self.batch_frags]
        yield from self._scan_batch(batch)
        self._cursor += len(batch)
        if self._cursor >= len(frags):
            self._cursor = 0
            self.report.passes += 1
            self.stats.incr("passes")
            return True
        return False

    # -- scanning ----------------------------------------------------------
    def _throttle(self) -> Generator[Any, Any, None]:
        while self.system.requests.inflight.value > self.inflight_limit:
            self.stats.incr("throttle_waits")
            yield self.engine.timeout(self.pace)

    def _scan_batch(self, batch: "list[int]") -> Generator[Any, Any, None]:
        """Read one batch through the stack, verify offline, repair."""
        if not batch:
            return
        region = self.region
        fs = region.frag_sectors
        req = self.system.requests.start("scrub", origin="scrubd",
                                         frags=len(batch))
        try:
            for start, end in _contiguous_runs(batch):
                sector = start * fs
                nsectors = (end - start + 1) * fs
                buf = Buf(self.engine, BufOp.READ, sector, nsectors,
                          owner="scrub")
                buf.request = req
                buf.parent_span = req.current_span
                self.system.driver.strategy(buf)
                try:
                    yield buf.done
                except EventFailed as failure:
                    cause = failure.args[0] if failure.args else failure
                    if not isinstance(cause, DiskError):
                        raise cause from None
                    # The stack saw the corruption first (ChecksumError /
                    # MediaError); the offline verify below enumerates
                    # every bad fragment in the run, not just the first.
                self.report.frags_scanned += end - start + 1
                data = self.system.disk.read_through(sector, nsectors)
                bad = region.verify_range(sector, data,
                                          cache=self.system.write_cache)
                for frag, reason in bad:
                    if region.record(frag).bad:
                        self.stats.incr("skipped_known_bad")
                        continue
                    self.report.detected += 1
                    self.stats.incr("detected")
                    yield from self._repair(frag, reason, req)
            req.complete()
        except BaseException as exc:
            req.complete(exc)
            raise

    # -- repair ladder -----------------------------------------------------
    def _repair(self, frag: int, reason: str,
                req: Any) -> Generator[Any, Any, None]:
        region = self.region
        rec = region.record(frag)
        data = None
        source = None
        replica = region.replica_frag(frag)
        if replica is not None and zlib.crc32(replica) == rec.crc:
            data = replica
            source = "replica"
        if data is None:
            data = self._cache_copy(frag, rec)
            if data is not None:
                source = "cache"
        if data is None:
            data = self._mirror_copy(frag, rec)
            if data is not None:
                source = "mirror"
        if data is None:
            region.mark_bad(frag)
            self.report.unrepairable += 1
            self.stats.incr("unrepairable")
            self.report.details.append(
                {"frag": frag, "reason": reason, "outcome": "unrepairable",
                 "source": None, "kind": region.frag_kind(frag)})
            return
        buf = Buf(self.engine, BufOp.WRITE, frag * region.frag_sectors,
                  region.frag_sectors, data=data, fua=True,
                  owner="scrub-repair")
        buf.request = req
        buf.parent_span = req.current_span
        self.system.driver.strategy(buf)
        try:
            yield buf.done
        except EventFailed as failure:
            cause = failure.args[0] if failure.args else failure
            raise cause from None
        self.report.repaired += 1
        self.stats.incr("repaired")
        if source == "replica":
            self.report.repaired_from_replica += 1
        elif source == "mirror":
            self.report.repaired_from_mirror += 1
        else:
            self.report.repaired_from_cache += 1
        self.report.details.append(
            {"frag": frag, "reason": reason, "outcome": "repaired",
             "source": source, "kind": region.frag_kind(frag)})

    def _mirror_copy(self, frag: int, rec: "Record") -> "bytes | None":
        """The mirror rung of the repair ladder: another member's copy of
        the fragment, accepted only if its CRC matches the record.  The
        repair write then goes back through the volume, overwriting the
        rotten copy on every live member."""
        volume = getattr(self.system, "volume", None)
        if volume is None or getattr(volume, "kind", "") != "mirror":
            return None
        fs = self.region.frag_sectors
        for member in volume.members:
            if not member.live or member.resyncing:
                continue
            data = member.disk.read_through(frag * fs, fs)
            if zlib.crc32(data) == rec.crc:
                return data
        return None

    def _cache_copy(self, frag: int, rec: "Record") -> "bytes | None":
        """A clean in-memory copy of the fragment, if its owner file is
        live and the block is cached.

        The page is only *read* — a dirty page stays dirty and will be
        written back (and restamped) by the ordinary sync path; the
        scrub repair just stops the on-disk rot from shadowing it.
        The block-pointer guard rejects stale attribution: the owner
        inode must still map ``owner_lbn`` to this physical block.
        """
        mount = self.system.mount
        if mount is None or rec.owner_ino == 0:
            return None
        vn = mount._vnodes.get(rec.owner_ino)
        if vn is None:
            return None
        lbn = rec.owner_lbn
        if lbn >= NDADDR:
            # Indirect blocks would need a pointer walk; decline (rare —
            # files that large are scrubbed from replicas of nothing, so
            # they fall through to unrepairable unless rewritten).
            return None
        ip = vn.inode
        addr = ip.direct[lbn] if lbn < len(ip.direct) else 0
        if addr == 0 or frag - rec.off != addr:
            return None
        sb = mount.sb
        offset = lbn * sb.bsize
        pc = mount.pagecache
        if offset % pc.page_size != 0:
            return None
        page = pc.lookup(vn, offset)
        if page is None or not page.valid or page.locked:
            return None
        lo = rec.off * sb.fsize
        chunk = bytes(page.data[lo:lo + sb.fsize])
        # Partial tail pages: the fragment must lie inside the cached span.
        if len(chunk) < sb.fsize:
            return None
        return chunk


class ScrubDaemon:
    """Timer-paced background scrubbing for one machine.

    Each tick scrubs one batch, unless foreground I/O is in flight (the
    tick is skipped and counted as throttled).  The timer is a *daemon*
    timeout: it never keeps the engine alive on its own, so workloads
    still run to idle.
    """

    def __init__(self, system: "System", interval: float = 5.0,
                 batch_frags: int = 64, inflight_limit: int = 2):
        if interval <= 0:
            raise InvalidArgumentError("interval must be > 0")
        self.system = system
        self.interval = interval
        self.scrubber = Scrubber(system, batch_frags=batch_frags,
                                 inflight_limit=inflight_limit)
        self.stats = self.scrubber.stats
        self.running = False
        self._proc = None
        #: Each member store's attach epoch when this daemon was created.
        #: A later System built over the same bytes (remount, crash
        #: survivor) bumps the epochs; a tick that sees a mismatch stands
        #: the daemon down instead of scrubbing a machine it no longer
        #: owns — its repairs would race the new system's I/O.
        self._store_epochs = [m.store.attach_epoch
                              for m in system.volume.members]

    @property
    def report(self) -> ScrubReport:
        return self.scrubber.report

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._proc = self.system.engine.process(self._run(), name="scrubd")

    def stop(self) -> None:
        self.running = False

    @property
    def stale(self) -> bool:
        """True once another System has been built over our stores."""
        return any(m.store.attach_epoch != epoch
                   for m, epoch in zip(self.system.volume.members,
                                       self._store_epochs))

    def _run(self) -> Generator[Any, Any, None]:
        while self.running:
            yield self.system.engine.timeout(self.interval, daemon=True)
            if not self.running:
                return
            if self.stale:
                self.stats.incr("stale_system_stops")
                self.running = False
                return
            if (self.system.requests.inflight.value
                    > self.scrubber.inflight_limit):
                self.stats.incr("ticks_throttled")
                continue
            self.stats.incr("ticks")
            wrapped = yield from self.scrubber.scrub_tick()
            if wrapped:
                # A full pass is a cross-layer consistency point worth
                # auditing, but the machine is not idle — foreground I/O
                # may be running — so only the always-on checks fire.
                self.system.sanitizer.checkpoint("scrub_pass", idle=False)
