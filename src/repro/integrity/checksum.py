"""Self-describing per-fragment integrity records and their on-disk home.

Production block stacks treat the disk's "success" as a claim, not a
fact: bit rot, misdirected writes, and lost writes all *succeed* at the
interface.  This module gives every fragment a 28-byte record

    ``(crc32, self_frag, generation, owner_ino, owner_lbn, flags)``

stored in an **integrity region** carved from the tail of the device by
``mkfs``/``tunefs``:

    ``[... data area ...][record table][cg header replicas][sb replica][header]``

The record is *self-describing*: it names the fragment address it was
computed for, so a write that lands at the wrong LBA is caught even when
the payload's CRC is intact (``reason="address"``).  The generation
counts restamps; generation 0 means "never written", which keeps holes
and never-used fragments free of false positives.  The owner fields
(inode, logical block, offset-in-block) let the repair ladder find a
clean copy in the page cache without walking block pointers.

Replica slots mirror the superblock and every cylinder-group header
block; they are refreshed automatically whenever those fragments are
restamped, so ``sync()``'s ordinary metadata writes keep them current.

Everything here is pure data plane — timing (the per-fragment checksum
CPU charge) lives in the disk driver.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.errors import InvalidArgumentError
from repro.sim.stats import StatSet
from repro.ufs.ondisk import Superblock
from repro.units import SECTOR_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.disk.store import DiskStore
    from repro.disk.wcache import VolatileWriteCache

#: Header magic for the integrity region (SUPERBLOCK_MAGIC is 0x011954).
INTEGRITY_MAGIC = 0x011957
INTEGRITY_VERSION = 1

#: crc32, self_frag, generation, owner_ino, owner_lbn, flags.
RECORD_FMT = "<IIQIII"
RECORD_SIZE = struct.calcsize(RECORD_FMT)

#: magic, version, nfrags, frag_sectors, frags_per_block, ncg,
#: table_sector, cg_replica_sector, sb_replica_sector, generation.
HEADER_FMT = "<IIIIIIIIIQ"

#: Scrub found this fragment unrepairable; reads still fail, but the
#: sanitizer and subsequent scrub passes skip it until a rewrite clears it.
FLAG_BAD = 0x1
#: Bits 8+ hold the fragment's offset within its logical block.
_OFF_SHIFT = 8


@dataclass(frozen=True)
class Record:
    """One fragment's integrity record, decoded."""

    crc: int
    self_frag: int
    gen: int
    owner_ino: int
    owner_lbn: int
    flags: int

    @property
    def bad(self) -> bool:
        return bool(self.flags & FLAG_BAD)

    @property
    def off(self) -> int:
        """The fragment's offset (in fragments) within its logical block."""
        return self.flags >> _OFF_SHIFT


class IntegrityRegion:
    """The on-disk record table + metadata replicas, cached in memory.

    The table is held as a bytearray and written through to the store in
    whole sectors on every stamp batch, so a crash snapshot (``clone``)
    always carries a consistent table.
    """

    def __init__(self, store: "DiskStore", sb: Superblock,
                 table_sector: int, cg_replica_sector: int,
                 sb_replica_sector: int, header_sector: int,
                 generation: int = 0):
        self.store = store
        self.sb = sb
        self.nfrags = sb.total_frags
        self.fsize = sb.fsize
        self.frag_sectors = sb.fsize // SECTOR_SIZE
        self.block_sectors = sb.bsize // SECTOR_SIZE
        self.frags_per_block = sb.frags_per_block
        self.table_sector = table_sector
        self.cg_replica_sector = cg_replica_sector
        self.sb_replica_sector = sb_replica_sector
        self.header_sector = header_sector
        self.generation = generation
        self.table_sectors = self.table_sectors_for(self.nfrags)
        self._table = bytearray(store.read(table_sector, self.table_sectors))
        self.stats = StatSet("integrity")
        # Fragment -> replica slot sector, for the sb block and every cg
        # header block: restamping one of these fragments refreshes its
        # mirror for free.
        self._replica_slots: dict[int, int] = {}
        self._frag_kind: dict[int, str] = {}
        sb_frag = sb.frags_per_block  # the superblock lives in block 1
        for i in range(sb.frags_per_block):
            frag = sb_frag + i
            self._replica_slots[frag] = sb_replica_sector + i * self.frag_sectors
            self._frag_kind[frag] = "sb"
        for cgx in range(sb.ncg):
            base = sb.cg_header_frag(cgx)
            slot = cg_replica_sector + cgx * self.block_sectors
            for i in range(sb.frags_per_block):
                self._replica_slots[base + i] = slot + i * self.frag_sectors
                self._frag_kind[base + i] = "cg"

    # -- layout ------------------------------------------------------------
    @staticmethod
    def table_sectors_for(nfrags: int) -> int:
        return -(-nfrags * RECORD_SIZE // SECTOR_SIZE)

    @classmethod
    def sectors_needed(cls, nfrags: int, ncg: int, bsize: int) -> int:
        """Device-tail sectors the region needs for ``nfrags`` fragments."""
        bs = bsize // SECTOR_SIZE
        return cls.table_sectors_for(nfrags) + (ncg + 1) * bs + 1

    @classmethod
    def create(cls, store: "DiskStore", sb: Superblock) -> "IntegrityRegion":
        """Lay out a fresh region in the device tail, past the data area.

        The replicas are seeded from the current on-disk superblock and
        cg headers; the record table starts all-zero (nothing stamped).
        """
        total = store.total_sectors
        needed = cls.sectors_needed(sb.total_frags, sb.ncg, sb.bsize)
        start = total - needed
        if start < sb.total_frags * (sb.fsize // SECTOR_SIZE):
            raise InvalidArgumentError(
                f"no room for integrity region: needs {needed} sectors past "
                f"the data area, device has "
                f"{total - sb.total_frags * (sb.fsize // SECTOR_SIZE)}"
            )
        table_sector = start
        table_sectors = cls.table_sectors_for(sb.total_frags)
        cg_replica_sector = table_sector + table_sectors
        bs = sb.bsize // SECTOR_SIZE
        sb_replica_sector = cg_replica_sector + sb.ncg * bs
        header_sector = total - 1
        fs = sb.fsize // SECTOR_SIZE
        # Clear any stale table bytes (tunefs re-enable over old slack).
        store.write(table_sector, bytes(table_sectors * SECTOR_SIZE))
        store.write(sb_replica_sector,
                    store.read(sb.frags_per_block * fs, bs))
        for cgx in range(sb.ncg):
            store.write(cg_replica_sector + cgx * bs,
                        store.read(sb.cg_header_frag(cgx) * fs, bs))
        region = cls(store, sb, table_sector, cg_replica_sector,
                     sb_replica_sector, header_sector)
        region._write_header()
        return region

    @classmethod
    def find(cls, store: "DiskStore") -> "IntegrityRegion | None":
        """Attach to an existing region, or None if the device has none."""
        raw = store.read(store.total_sectors - 1, 1)
        (magic, version, nfrags, frag_sectors, frags_per_block, ncg,
         table_sector, cg_replica_sector, sb_replica_sector,
         generation) = struct.unpack_from(HEADER_FMT, raw)
        if magic != INTEGRITY_MAGIC or version != INTEGRITY_VERSION:
            return None
        bs = frags_per_block * frag_sectors
        sb = Superblock.unpack(store.read(sb_replica_sector, bs))
        return cls(store, sb, table_sector, cg_replica_sector,
                   sb_replica_sector, store.total_sectors - 1, generation)

    def erase(self) -> None:
        """Clear the header magic: the region is forgotten (tunefs)."""
        self.store.write(self.header_sector, bytes(SECTOR_SIZE))

    def _write_header(self) -> None:
        head = struct.pack(
            HEADER_FMT, INTEGRITY_MAGIC, INTEGRITY_VERSION, self.nfrags,
            self.frag_sectors, self.frags_per_block, self.sb.ncg,
            self.table_sector, self.cg_replica_sector,
            self.sb_replica_sector, self.generation,
        )
        self.store.write(self.header_sector, head.ljust(SECTOR_SIZE, b"\x00"))

    # -- records -----------------------------------------------------------
    def record(self, frag: int) -> Record:
        off = frag * RECORD_SIZE
        return Record(*struct.unpack_from(RECORD_FMT, self._table, off))

    def _put(self, frag: int, rec: Record, dirty: set[int]) -> None:
        struct.pack_into(RECORD_FMT, self._table, frag * RECORD_SIZE,
                         rec.crc, rec.self_frag, rec.gen, rec.owner_ino,
                         rec.owner_lbn, rec.flags)
        dirty.add(frag * RECORD_SIZE // SECTOR_SIZE)

    def _flush(self, dirty: Iterable[int]) -> None:
        for ts in sorted(dirty):
            start = ts * SECTOR_SIZE
            self.store.write(self.table_sector + ts,
                             bytes(self._table[start:start + SECTOR_SIZE]))
        self.generation += 1
        self._write_header()

    def frag_kind(self, frag: int) -> str:
        """``"sb"``, ``"cg"``, or ``"data"`` — picks the repair source."""
        return self._frag_kind.get(frag, "data")

    def stamped_frags(self) -> "list[int]":
        """All fragments with a live record (generation > 0), sorted."""
        out = []
        for frag in range(self.nfrags):
            gen, = struct.unpack_from("<Q", self._table,
                                      frag * RECORD_SIZE + 8)
            if gen:
                out.append(frag)
        return out

    # -- stamping (write path) ---------------------------------------------
    def _stamp_one(self, frag: int, chunk: bytes,
                   owner: "tuple[int, int, int] | None",
                   dirty: set[int]) -> None:
        old = self.record(frag)
        if owner is not None:
            ino, lbn, off = owner
        elif old.gen > 0:
            # An owner-less rewrite (fsck, scrub repair, metadata) keeps
            # the existing attribution.
            ino, lbn, off = old.owner_ino, old.owner_lbn, old.off
        else:
            ino, lbn, off = 0, 0, 0
        rec = Record(zlib.crc32(chunk), frag, old.gen + 1, ino, lbn,
                     off << _OFF_SHIFT)  # any restamp clears FLAG_BAD
        self._put(frag, rec, dirty)
        slot = self._replica_slots.get(frag)
        if slot is not None:
            self.store.write(slot, chunk)
            self.stats.incr("replica_refreshes")

    def stamp_range(self, sector: int, data: bytes,
                    owner: "tuple[int, int] | None" = None) -> int:
        """Stamp every whole fragment a write of ``data`` at ``sector``
        covers; returns how many were stamped.

        ``owner`` is ``(inode, first_lbn)`` of the issuing file write;
        the per-fragment logical block and offset follow from the index
        within the run (ufs writes are physically contiguous runs of
        whole blocks plus at most one trailing fragment run).
        """
        fs = self.frag_sectors
        nsectors = len(data) // SECTOR_SIZE
        first = -(-sector // fs)
        last = (sector + nsectors) // fs
        dirty: set[int] = set()
        stamped = 0
        aligned = sector % fs == 0
        for frag in range(first, min(last, self.nfrags)):
            off_bytes = (frag * fs - sector) * SECTOR_SIZE
            chunk = bytes(data[off_bytes:off_bytes + self.fsize])
            frag_owner = None
            if owner is not None and aligned:
                idx = frag - sector // fs
                frag_owner = (owner[0],
                              owner[1] + idx // self.frags_per_block,
                              idx % self.frags_per_block)
            self._stamp_one(frag, chunk, frag_owner, dirty)
            stamped += 1
        if dirty:
            self.stats.incr("stamps", stamped)
            self._flush(dirty)
        return stamped

    def stamp_all(self) -> int:
        """Stamp every fragment holding non-zero data (mkfs/tunefs)."""
        fs = self.frag_sectors
        data_sectors = self.nfrags * fs
        frags = sorted({s // fs for s in self.store.nonzero_sectors()
                        if s < data_sectors})
        dirty: set[int] = set()
        for frag in frags:
            chunk = self.store.read(frag * fs, fs)
            self._stamp_one(frag, chunk, None, dirty)
        if dirty:
            self.stats.incr("stamps", len(frags))
            self._flush(dirty)
        return len(frags)

    def mark_bad(self, frag: int) -> None:
        """Scrub gave up on this fragment: remember that, so the
        sanitizer and later passes don't re-report it.  Any full rewrite
        of the fragment clears the flag (rehabilitation)."""
        rec = self.record(frag)
        dirty: set[int] = set()
        self._put(frag, Record(rec.crc, rec.self_frag, rec.gen,
                               rec.owner_ino, rec.owner_lbn,
                               rec.flags | FLAG_BAD), dirty)
        self.stats.incr("marked_bad")
        self._flush(dirty)

    def forge_misdirect(self, frag: int, data: bytes) -> None:
        """Model the record stream of a misdirected write: ``data`` (now
        sitting at ``frag``) carries a *valid* CRC, but the
        self-describing address names a different fragment — only the
        address check can catch it.  Fault-injection helper."""
        rec = self.record(frag)
        wrong = (frag + 1) % self.nfrags
        dirty: set[int] = set()
        self._put(frag, Record(zlib.crc32(data), wrong, max(rec.gen, 1),
                               rec.owner_ino, rec.owner_lbn,
                               rec.flags & ~FLAG_BAD), dirty)
        self._flush(dirty)

    # -- verification (read path) ------------------------------------------
    def verify_range(self, sector: int, data: bytes,
                     cache: "VolatileWriteCache | None" = None,
                     ) -> "list[tuple[int, str]]":
        """Check ``data`` (as read from ``sector``) against the table.

        Returns ``(frag, reason)`` for every fully-covered fragment that
        disagrees — ``reason`` is ``"address"`` (the record describes a
        different fragment: a misdirected write) or ``"crc"``.  Skipped:
        fragments never stamped (generation 0), fragments past the data
        area, and fragments any volatile write-cache entry overlaps
        (the read returned fresh overlay bytes the table hasn't seen —
        they are stamped at destage).
        """
        fs = self.frag_sectors
        nsectors = len(data) // SECTOR_SIZE
        first = -(-sector // fs)
        last = (sector + nsectors) // fs
        bad: list[tuple[int, str]] = []
        for frag in range(first, min(last, self.nfrags)):
            rec = self.record(frag)
            if rec.gen == 0:
                continue
            if cache is not None and cache.covers(frag * fs, fs):
                continue
            off = (frag * fs - sector) * SECTOR_SIZE
            chunk = bytes(data[off:off + self.fsize])
            if rec.self_frag != frag:
                bad.append((frag, "address"))
            elif zlib.crc32(chunk) != rec.crc:
                bad.append((frag, "crc"))
        if bad:
            self.stats.incr("verify_failures", len(bad))
        return bad

    # -- replicas (repair sources) -----------------------------------------
    def sb_replica(self) -> bytes:
        """The mirrored superblock block."""
        return self.store.read(self.sb_replica_sector, self.block_sectors)

    def cg_replica(self, cgx: int) -> bytes:
        """The mirrored header block of cylinder group ``cgx``."""
        if not 0 <= cgx < self.sb.ncg:
            raise ValueError(f"cylinder group {cgx} out of range")
        return self.store.read(self.cg_replica_sector + cgx * self.block_sectors,
                               self.block_sectors)

    def replica_frag(self, frag: int) -> "bytes | None":
        """The mirrored bytes of one sb/cg-header fragment, or None."""
        slot = self._replica_slots.get(frag)
        if slot is None:
            return None
        return self.store.read(slot, self.frag_sectors)
