"""Scrub campaigns: seeded latent-corruption sweeps.

The campaign answers the integrity layer's accountability question the
way the crash campaign answers fsck's: inject a *known*, seeded set of
silent corruptions into a live file system, run one scrub pass, and make
the report answer for every single one:

* every injected corruption must be **detected** (checksum or address
  mismatch) — silent corruption surviving a scrub is a model bug;
* corruptions with a clean source must be **repaired** from it — the
  integrity region's metadata replicas for superblock / cg-header
  fragments, the page cache for data fragments whose owner file is
  cached — and the repaired bytes must compare equal to the original;
* corruptions with no clean source must surface as **EIO with precise
  partial-read semantics**: bytes before the bad fragment are returned,
  nothing after it is, and ``proc.errno`` says ``"EIO"``;
* rewriting an unrepairable file must rehabilitate it: a second scrub
  pass detects nothing, fsck is clean, and the deep sanitizer sweep
  passes.

Determinism: all targets and corruption payloads come from
``random.Random(seed)``, and the simulation is deterministic, so the
same seed yields a byte-identical report (and digest) on every run.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass
from typing import Any, Generator

from repro.disk.geometry import DiskGeometry
from repro.errors import ReproError
from repro.faults.plan import CORRUPT_KINDS, corrupt_frag
from repro.integrity.scrub import Scrubber
from repro.kernel.config import SystemConfig
from repro.kernel.syscalls import Proc
from repro.kernel.system import System
from repro.sim.engine import SimulationError
from repro.sim.invariants import SanitizerError
from repro.sim.stats import StatSet
from repro.ufs.fsck import fsck
from repro.units import KB

#: Corruption kinds used on targets that must repair from the page cache
#: (``misdirect`` forges the record's address field, which still repairs,
#: but keeping it on the latent side keeps expected outcomes readable).
_CACHED_KINDS = ("bitrot", "zero", "torn")


def default_scrub_config() -> SystemConfig:
    """A small checksummed disk, so scrub passes over the whole device
    stay fast (the same geometry the crash campaign uses)."""
    return SystemConfig.config_a().with_(
        geometry=DiskGeometry.uniform(cylinders=120, heads=2,
                                      sectors_per_track=32),
        checksums=True)


@dataclass
class ScrubCampaignStats:
    """Aggregated results; byte-identical for a given seed."""

    injected: int = 0
    detected: int = 0
    repaired: int = 0
    repaired_from_cache: int = 0
    repaired_from_replica: int = 0
    unrepairable: int = 0
    #: Injected corruptions the scrub never reported: must be zero.
    detect_misses: int = 0
    #: Detections whose outcome/source differed from the injection's
    #: expectation (e.g. a cached target that went unrepairable).
    outcome_mismatches: int = 0
    #: Repaired fragments whose on-disk bytes differ from the original.
    verify_failures: int = 0
    #: Latent-file reads that did not honour EIO / partial-read semantics.
    eio_misses: int = 0
    #: Detections by the second pass after rehabilitation: must be zero.
    residual_detected: int = 0
    fsck_clean: bool = False

    def as_dict(self) -> "dict[str, Any]":
        return asdict(self)

    @property
    def ok(self) -> bool:
        return (self.detected >= self.injected
                and self.detect_misses == 0
                and self.outcome_mismatches == 0
                and self.verify_failures == 0
                and self.eio_misses == 0
                and self.residual_detected == 0
                and self.fsck_clean)

    def __str__(self) -> str:  # pragma: no cover - CLI convenience
        return "\n".join(f"{k:24} {v}" for k, v in self.as_dict().items())


class ScrubCampaign:
    """Inject seeded silent corruption, scrub, and audit every outcome."""

    def __init__(self, seed: int = 0, nfiles: int = 8,
                 file_bytes: int = 24 * KB,
                 config: "SystemConfig | None" = None,
                 sanitize: "bool | None" = None):
        if nfiles < 2 or nfiles % 2:
            raise ValueError("nfiles must be even and >= 2")
        self.seed = seed
        self.nfiles = nfiles
        self.file_bytes = file_bytes
        self.config = config if config is not None else default_scrub_config()
        if not self.config.checksums:
            raise ValueError("scrub campaign requires a checksummed config")
        self.sanitize = sanitize
        self.stats = ScrubCampaignStats()
        self.statset = StatSet("scrubcampaign")
        #: One dict per injection (target, kind, expected and actual
        #: outcome), JSON-ready; filled by :meth:`run`.
        self.records: "list[dict]" = []
        self.digest = ""

    # -- workload ----------------------------------------------------------
    def _payload(self, i: int) -> bytes:
        return bytes((i * 41 + j * 13) % 251 + 1 for j in range(self.file_bytes))

    def _path(self, i: int) -> str:
        return f"/data/f{i}"

    def _build(self, proc: Proc) -> Generator[Any, Any, None]:
        yield from proc.mkdir("/data")
        for i in range(self.nfiles):
            fd = yield from proc.creat(self._path(i))
            yield from proc.write(fd, self._payload(i))
            yield from proc.fsync(fd)
            yield from proc.close(fd)

    @staticmethod
    def _open_read(proc: Proc, path: str, length: int
                   ) -> Generator[Any, Any, "tuple[int, bytes]"]:
        fd = yield from proc.open(path)
        data = yield from proc.read(fd, length)
        return fd, data

    @staticmethod
    def _read_chunk(proc: Proc, fd: int, length: int
                    ) -> Generator[Any, Any, bytes]:
        return (yield from proc.read(fd, length))

    # -- the sweep ---------------------------------------------------------
    def run(self) -> ScrubCampaignStats:
        cfg = self.config
        half = self.nfiles // 2
        bsize = cfg.fs_params.bsize
        nblocks = self.file_bytes // bsize

        # Phase 1: build the population and push it durable.
        builder = System(cfg)
        if self.sanitize is not None:
            builder.sanitizer.enabled = self.sanitize
        builder.mkfs()
        builder.run(builder.mount_fs())
        builder.run(self._build(Proc(builder)), name="scrub-build")
        builder.sync()
        store = builder.store

        # Phase 2: a fresh machine over the same bytes.  Reading the first
        # half populates its page cache — the repair source for those files.
        survivor = System.remounted(store, cfg)
        if self.sanitize is not None:
            survivor.sanitizer.enabled = self.sanitize
        region = survivor.disk.integrity
        assert region is not None
        sb = survivor.mount.sb if survivor.mount is not None else None
        assert sb is not None and survivor.mount is not None
        fpb = sb.frags_per_block
        fs = region.frag_sectors
        proc = Proc(survivor)
        fds: dict[int, int] = {}
        for i in range(half):
            fd, data = survivor.run(
                self._open_read(proc, self._path(i), self.file_bytes),
                name="scrub-warm")
            assert data == self._payload(i), "pre-injection read mismatch"
            fds[i] = fd

        # Learn the latent files' block addresses up front: once injection
        # starts, any engine run would checkpoint the sanitizer against a
        # deliberately-corrupted disk.
        latent_direct: "dict[int, list[int]]" = {}
        for i in range(half, self.nfiles):
            fd, _ = survivor.run(
                self._open_read(proc, self._path(i), 0), name="scrub-stat")
            latent_direct[i] = list(proc._files[fd].vnode.inode.direct)
            survivor.run(proc.close(fd), name="scrub-stat")

        # Phase 3: seeded injection, offline (between engine runs), like
        # rot developing while the machine runs.
        rng = random.Random(self.seed)
        used: set[int] = set()
        injected: "list[dict]" = []

        def _pick(direct: "list[int]", lbn: "int | None"
                  ) -> "tuple[int, int, int]":
            while True:
                blk = rng.randrange(nblocks) if lbn is None else lbn
                off = rng.randrange(fpb)
                frag = direct[blk] + off
                if frag not in used:
                    used.add(frag)
                    return blk, off, frag

        for i in range(half):
            ip = proc._files[fds[i]].vnode.inode
            lbn, off, frag = _pick(ip.direct, None)
            kind = _CACHED_KINDS[i % len(_CACHED_KINDS)]
            corrupt_frag(store, region, frag, kind, rng)
            injected.append({"target": self._path(i), "file": i, "lbn": lbn,
                             "off": off, "frag": frag, "kind": kind,
                             "expect": "cache"})
        for frag, target in ((sb.frags_per_block, "superblock"),
                             (sb.cg_header_frag(1), "cg-header-1")):
            used.add(frag)
            corrupt_frag(store, region, frag, "bitrot", rng)
            injected.append({"target": target, "file": None, "lbn": None,
                             "off": None, "frag": frag, "kind": "bitrot",
                             "expect": "replica"})
        for j, i in enumerate(range(half, self.nfiles)):
            lbn = 0 if j % 2 == 0 else 1  # even: EIO at once; odd: partial
            lbn, off, frag = _pick(latent_direct[i], lbn)
            kind = CORRUPT_KINDS[j % len(CORRUPT_KINDS)]
            corrupt_frag(store, region, frag, kind, rng)
            injected.append({"target": self._path(i), "file": i, "lbn": lbn,
                             "off": off, "frag": frag, "kind": kind,
                             "expect": "unrepairable"})

        s = self.stats
        s.injected = len(injected)

        # Phase 4: one full scrub pass over every stamped fragment.
        scrubber = Scrubber(survivor)
        report = survivor.run(scrubber.scrub_now(), name="scrub-pass")
        s.detected = report.detected
        s.repaired = report.repaired
        s.repaired_from_cache = report.repaired_from_cache
        s.repaired_from_replica = report.repaired_from_replica
        s.unrepairable = report.unrepairable

        outcomes = {d["frag"]: d for d in report.details}
        for inj in injected:
            got = outcomes.get(inj["frag"])
            if got is None:
                s.detect_misses += 1
                inj["outcome"] = "undetected"
                continue
            inj["reason"] = got["reason"]
            if got["outcome"] == "repaired":
                inj["outcome"] = f"repaired:{got['source']}"
                if inj["expect"] != got["source"]:
                    s.outcome_mismatches += 1
            else:
                inj["outcome"] = "unrepairable"
                if inj["expect"] != "unrepairable":
                    s.outcome_mismatches += 1

        # Phase 5a: repaired data fragments must hold the original bytes.
        for inj in injected:
            if inj["expect"] != "cache" or not inj["outcome"].startswith("rep"):
                continue
            payload = self._payload(inj["file"])
            lo = inj["lbn"] * bsize + inj["off"] * region.fsize
            expect = payload[lo:lo + region.fsize]
            if store.read(inj["frag"] * fs, fs) != expect:
                s.verify_failures += 1
        # ... and the cached files read back whole, through the stack.
        for i in range(half):
            survivor.run(proc.lseek(fds[i], 0), name="scrub-verify")
            got = survivor.run(
                self._read_chunk(proc, fds[i], self.file_bytes),
                name="scrub-verify")
            if got != self._payload(i):
                s.verify_failures += 1
            survivor.run(proc.close(fds[i]), name="scrub-verify")

        # Phase 5b: unrepairable files fail with EIO, keeping every byte
        # before the bad fragment and surfacing nothing at/after it.
        for inj in injected:
            if inj["expect"] != "unrepairable":
                continue
            inj["eio_ok"] = self._check_eio(survivor, inj, bsize, nblocks)
            if not inj["eio_ok"]:
                s.eio_misses += 1

        # Phase 6: rehabilitation — rewriting a whole file (full aligned
        # blocks: no read-modify-write) restamps its fragments and clears
        # the BAD marks; a second pass must come up empty.
        rehab = Proc(survivor)
        for inj in injected:
            if inj["expect"] != "unrepairable":
                continue
            survivor.run(self._rewrite(rehab, inj["file"]), name="scrub-rehab")
        second = Scrubber(survivor)
        report2 = survivor.run(second.scrub_now(), name="scrub-pass-2")
        s.residual_detected = report2.detected

        survivor.sync()
        s.fsck_clean = bool(fsck(store).clean)
        # The machine is quiesced and every fragment accounted for: the
        # deep sweep (fsck walkers + integrity table audit) must pass.
        survivor.sanitizer.checkpoint("scrubcampaign_final", idle=True,
                                      deep=True)

        self.records = injected
        lines = sorted(
            json.dumps(r, sort_keys=True, default=str) for r in injected)
        self.digest = hashlib.sha256(
            "\n".join(lines).encode()).hexdigest()[:16]
        for key, value in s.as_dict().items():
            self.statset.incr(key, int(value))
        return s

    def _rewrite(self, proc: Proc, i: int) -> Generator[Any, Any, None]:
        fd = yield from proc.open(self._path(i))
        yield from proc.write(fd, self._payload(i))
        yield from proc.fsync(fd)
        yield from proc.close(fd)

    def _check_eio(self, survivor: System, inj: dict, bsize: int,
                   nblocks: int) -> bool:
        """Block-at-a-time reads: every block before the corrupt one is
        returned intact, the corrupt one fails with EIO."""
        proc = Proc(survivor, name="eio-check")
        payload = self._payload(inj["file"])
        try:
            fd = survivor.run(proc.open(self._path(inj["file"])),
                              name="scrub-eio")
        except (ReproError, SimulationError):
            return False
        ok = True
        for lbn in range(nblocks):
            try:
                got = survivor.run(self._read_chunk(proc, fd, bsize),
                                   name="scrub-eio")
            except SanitizerError:
                raise
            except (ReproError, SimulationError):
                got = None
            if lbn < inj["lbn"]:
                if got != payload[lbn * bsize:(lbn + 1) * bsize]:
                    ok = False  # a clean prefix block was lost
            elif lbn == inj["lbn"]:
                if got is not None or proc.errno != "EIO":
                    ok = False  # the bad block must fail, precisely
                break
        survivor.run(proc.close(fd), name="scrub-eio")
        return ok

    def to_json(self) -> dict:
        """The sweep as one JSON-ready document (stats + per-injection
        records + seed-stable digest)."""
        return {
            "seed": self.seed,
            "stats": self.stats.as_dict(),
            "injections": self.records,
            "digest": self.digest,
            "ok": self.stats.ok,
        }


def run_scrubcampaign(seed: int = 0, sanitize: "bool | None" = None,
                      json_path: "str | None" = None,
                      out=print) -> ScrubCampaign:
    """Run one campaign; optionally write the JSON document.  Returns the
    campaign (``campaign.stats.ok`` is the pass/fail verdict)."""
    campaign = ScrubCampaign(seed=seed, sanitize=sanitize)
    stats = campaign.run()
    out(stats)
    out(f"{'digest':24} {campaign.digest}")
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(campaign.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        out(f"wrote {json_path}")
    return campaign
