"""The rotational disk mechanism: seeks, rotation, transfer, track buffer.

Timing model
------------
The spindle never stops: the angular position is a pure function of simulated
time.  Servicing a request walks it track by track:

* **media access** (all writes; reads that miss the track buffer): per-request
  controller overhead, a seek if the cylinder changes, a head switch if the
  head changes, the rotational wait until the first target sector arrives,
  then one sector time per sector.  Track and cylinder skew make sequential
  multi-track transfers stream with only small waits at boundaries.
* **buffer-assisted read**: when a read starts inside the region the
  look-ahead buffer has been filling since the last media read, no rotational
  latency is charged; the request completes when the last requested sector
  has rotated into the buffer (or after the bus transfer, whichever is
  later).  This is the mechanism behind the paper's "the track buffer helps
  only reads" and behind clustered reads streaming at the media rate.

Writes are write-through (the paper's footnote 5: acknowledging a write from
the buffer would break the stable-storage promise) and invalidate the buffer,
since the head moves and look-ahead stops.

With a :class:`~repro.disk.wcache.VolatileWriteCache` attached, the disk
instead models the drive footnote 5 warns about: non-FUA writes are
acknowledged after the bus transfer and sit volatile until a FLUSH command,
a force-unit-access write, or capacity pressure destages them (paying the
real media time then).  Reads see the cache contents through an overlay.
A power cut drops whatever is volatile.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.disk.buf import Buf
from repro.disk.geometry import DiskGeometry
from repro.disk.store import DiskStore
from repro.errors import ChecksumError, PowerLossError
from repro.sim.events import Event
from repro.sim.stats import StatSet
from repro.units import MB, MS

if TYPE_CHECKING:  # pragma: no cover
    from repro.disk.wcache import VolatileWriteCache
    from repro.faults.plan import FaultPlan
    from repro.sim.engine import Engine


class TrackBuffer:
    """Look-ahead read buffer state.

    After a media read finishing at linear sector ``fill_start - 1``, the
    controller keeps streaming: it reads forward across track and cylinder
    boundaries (paying head-switch/skew gaps), as real look-ahead buffers
    do, until the head is moved by an unrelated access.  ``lookahead_tracks``
    bounds how far ahead the buffer is allowed to get (its capacity).

    ``availability(sector)`` is the simulated time the sector is fully in
    the buffer; a consumer reading sequentially therefore streams at the
    media rate with no rotational misses — the mechanism that makes
    clustered reads faster than clustered writes in the paper's figure 10.
    """

    def __init__(self, geometry: DiskGeometry, lookahead_tracks: int = 2):
        self.geometry = geometry
        self.lookahead_tracks = lookahead_tracks
        self.valid = False
        self.fill_start = 0  # linear sector where the fill began
        self.base_time = 0.0  # time the fill started (fill_start under head)
        self.consumed = 0  # one past the last sector the host has taken

    def set(self, fill_start: int, base_time: float) -> None:
        """Start (or restart) look-ahead filling from ``fill_start``."""
        self.valid = True
        self.fill_start = fill_start
        self.base_time = base_time
        self.consumed = fill_start

    def consume(self, sector_end: int) -> None:
        """The host took sectors up to ``sector_end``; ring space freed."""
        self.consumed = max(self.consumed, sector_end)

    def invalidate(self) -> None:
        self.valid = False

    def _limit(self) -> int:
        # Ring semantics: the fill may run `capacity` ahead of whatever the
        # host has consumed, indefinitely, as long as the head stays put.
        cyl, _, _ = self.geometry.to_chs(self.fill_start)
        spt = self.geometry.sectors_per_track_at(cyl)
        capacity = self.lookahead_tracks * spt
        return min(max(self.consumed, self.fill_start) + capacity,
                   self.geometry.total_sectors)

    def covers(self, sector: int) -> bool:
        """True if ``sector`` is within the (possibly future) fill range."""
        return self.valid and self.fill_start <= sector < self._limit()

    def availability(self, sector: int) -> float:
        """Time at which ``sector`` is fully buffered.

        The fill streams at one sector time per sector, plus a skew gap at
        every track boundary it crosses (the same gaps a media transfer
        pays).
        """
        if not self.covers(sector):
            raise ValueError(f"sector {sector} is not in the buffered range")
        geom = self.geometry
        cyl0, head0, _ = geom.to_chs(self.fill_start)
        cyl1, head1, _ = geom.to_chs(sector)
        spt = geom.sectors_per_track_at(cyl0)
        st = geom.rotation_time / spt
        track0 = cyl0 * geom.heads + head0
        track1 = cyl1 * geom.heads + head1
        boundaries = track1 - track0
        skew_gap = geom.track_skew * st
        delta = sector - self.fill_start + 1
        # Cylinder boundaries cost the (larger) cylinder skew.
        cyl_boundaries = cyl1 - cyl0
        track_boundaries = boundaries - cyl_boundaries
        cyl_gap = geom.cyl_skew * st
        return (self.base_time + delta * st
                + track_boundaries * skew_gap + cyl_boundaries * cyl_gap)


class RotationalDisk:
    """A rotational disk with real data, real angles, and a track buffer."""

    def __init__(self, engine: "Engine", geometry: DiskGeometry | None = None,
                 store: DiskStore | None = None,
                 track_buffer: bool = True,
                 bus_rate: float = 2.5 * MB,
                 controller_overhead: float = 0.7 * MS,
                 buffer_hit_overhead: float = 0.3 * MS,
                 fault_plan: "FaultPlan | None" = None,
                 write_cache: "VolatileWriteCache | None" = None):
        self.engine = engine
        self.geometry = geometry if geometry is not None else DiskGeometry.ibm_400mb()
        self.store = store if store is not None else DiskStore(
            self.geometry.total_sectors, self.geometry.sector_size
        )
        if self.store.total_sectors != self.geometry.total_sectors:
            raise ValueError("store size does not match geometry")
        self.has_track_buffer = track_buffer
        self.bus_rate = bus_rate
        self.controller_overhead = controller_overhead
        self.buffer_hit_overhead = buffer_hit_overhead
        self.track_buffer = TrackBuffer(self.geometry)
        #: Optional injected fault schedule (see repro.faults.FaultPlan).
        self.fault_plan = fault_plan
        #: Optional volatile write cache (see repro.disk.wcache); None keeps
        #: the paper's write-through semantics.
        self.write_cache = write_cache
        #: Optional integrity region (repro.integrity.checksum): reads are
        #: verified and writes stamped against it.  See attach_integrity.
        self.integrity = None
        self.stats = StatSet("disk")
        self._cyl = 0
        self._head = 0

    # -- convenience -------------------------------------------------------
    @property
    def current_cylinder(self) -> int:
        return self._cyl

    def attach_integrity(self, region: "Any | None" = None) -> "Any | None":
        """Attach (or discover on the store) an integrity region; from
        here on every read is verified and every media write stamped."""
        if region is None:
            from repro.integrity.checksum import IntegrityRegion

            region = IntegrityRegion.find(self.store)
        self.integrity = region
        return region

    def service(self, buf: Buf) -> Generator[Event, Any, None]:
        """Service one request; advances simulated time.  Driver-only API."""
        engine = self.engine
        geom = self.geometry
        buf.started_at = engine.now
        self.stats.incr("requests")
        if buf.is_flush:
            self.stats.incr("flushes")
        else:
            self.stats.incr("reads" if buf.is_read else "writes")
            self.stats.incr("sectors", buf.nsectors)

        if self.fault_plan is not None:
            # Latent rot develops while the machine runs, independent of
            # what request happens to be in service.
            self.fault_plan.apply_due_bitrot(self.store, engine.now)
            decision = self.fault_plan.decide(buf, engine.now)
            if decision is not None:
                yield from self._fail(buf, decision)

        if buf.is_flush:
            yield engine.timeout(self.controller_overhead)
            yield from self._service_flush(buf)
            return

        cache = self.write_cache
        cached = cache is not None and buf.is_write and not buf.fua

        if buf.is_write and not cached:
            # The head moves and look-ahead stops; be conservative.  (A
            # cached write never touches the media here, so look-ahead
            # survives it — one of the ways a volatile cache "helps".)
            self.track_buffer.invalidate()

        # Per-request controller/command overhead.
        yield engine.timeout(self.controller_overhead)

        sector = buf.sector
        remaining = buf.nsectors
        if sector + remaining > geom.total_sectors:
            raise ValueError(
                f"request [{sector}, {sector + remaining}) beyond end of disk"
            )

        if cached:
            assert cache is not None and buf.data is not None
            if len(buf.data) != buf.nbytes:
                raise ValueError(
                    f"write buf data length {len(buf.data)} != {buf.nbytes}"
                )
            # The forbidden fast ack: bus transfer only, no media time.
            buf.xfer_time += buf.nbytes / self.bus_rate
            yield engine.timeout(buf.nbytes / self.bus_rate)
            plan = self.fault_plan
            if plan is not None and plan.cuts_power_during(buf.started_at,
                                                           engine.now):
                # Cut during the host transfer: nothing reached the cache.
                self._power_died(plan)
            cache.write(buf)
            self.stats.incr("cached_writes")
            # Capacity pressure destages oldest-first, charged to this
            # request (the drive stalls the host while it makes room).
            while cache.over_limit:
                yield from self._destage_head(buf)
            return

        first_segment = True
        while remaining > 0:
            if (
                buf.is_read
                and self.has_track_buffer
                and self.track_buffer.covers(sector)
            ):
                # Stream from the (still filling) look-ahead buffer; the
                # run may cross track boundaries, as the fill does.
                run = min(remaining, self.track_buffer._limit() - sector)
                yield from self._buffer_read(buf, sector, run, first_segment)
                cyl, head, _ = geom.to_chs(sector + run - 1)
            else:
                cyl, head, idx = geom.to_chs(sector)
                spt = geom.sectors_per_track_at(cyl)
                run = min(remaining, spt - idx)
                yield from self._media_access(buf, cyl, head, idx, run)
                if buf.is_read and self.has_track_buffer:
                    # The fill begins where this media read began.
                    transfer = run * geom.sector_time(cyl)
                    self.track_buffer.set(sector, engine.now - transfer)
            self._cyl, self._head = cyl, head
            sector += run
            remaining -= run
            first_segment = False

        # Power cut mid-request: tear an in-flight write at a sector
        # boundary and freeze the durable state forever after.
        plan = self.fault_plan
        if plan is not None and plan.cuts_power_during(buf.started_at, engine.now):
            if buf.is_write:
                assert buf.data is not None
                durable = plan.torn_prefix_sectors(buf, buf.started_at, engine.now)
                if durable > 0:
                    self.store.write(buf.sector,
                                     buf.data[:durable * geom.sector_size])
                    if self.integrity is not None:
                        # Only the fully-durable fragments get records;
                        # the torn remainder keeps its old ones and will
                        # fail verification (as it should).
                        self.integrity.stamp_range(
                            buf.sector, buf.data[:durable * geom.sector_size],
                            buf.integrity_owner)
                self.stats.incr("torn_writes")
                plan.stats.incr("torn_writes")
                plan.stats.incr("torn_sectors_lost", buf.nsectors - durable)
            self._power_died(plan)

        # Data plane: move the real bytes.
        if buf.is_read:
            buf.data = self.read_through(buf.sector, buf.nsectors)
            if self.integrity is not None:
                bad = self.integrity.verify_range(buf.sector, buf.data,
                                                  cache=cache)
                if bad:
                    frag, reason = bad[0]
                    self.stats.incr("checksum_failures", len(bad))
                    raise ChecksumError(
                        f"{reason} mismatch at fragment {frag} "
                        f"(read [{buf.sector}, {buf.sector + buf.nsectors}))",
                        sector=frag * self.integrity.frag_sectors,
                        frag=frag, reason=reason)
        else:
            assert buf.data is not None
            if len(buf.data) != buf.nbytes:
                raise ValueError(
                    f"write buf data length {len(buf.data)} != {buf.nbytes}"
                )
            silent = plan.decide_silent(buf, engine.now) if plan is not None \
                else None
            if silent == "lost":
                # Acknowledged, never reaches the media.
                self.stats.incr("silent_lost_writes")
            elif silent == "misdirect":
                # The bytes land at the wrong LBA; both the intended and
                # the victim location now disagree with the record table.
                target = buf.sector + plan.misdirect_shift
                target = max(0, min(target,
                                    self.store.total_sectors - buf.nsectors))
                self.store.write(target, buf.data)
                self.stats.incr("silent_misdirected_writes")
            elif silent == "torn_tail":
                # The tail of the transfer is quietly dropped (at least
                # one sector), as a firmware bug or cut cable would.
                keep = buf.nsectors - max(1, buf.nsectors // 4)
                if keep > 0:
                    self.store.write(buf.sector,
                                     buf.data[:keep * geom.sector_size])
                self.stats.incr("silent_torn_writes")
            else:
                self.store.write(buf.sector, buf.data)
            # The drive believes the write succeeded (that is what makes
            # the fault silent), so the *intended* range is stamped either
            # way — the stale or misplaced bytes are what a later read's
            # verification catches.
            if self.integrity is not None:
                self.integrity.stamp_range(buf.sector, buf.data,
                                           buf.integrity_owner)
            if cache is not None:
                cache.note_fua(buf)

    def read_through(self, sector: int, nsectors: int) -> bytes:
        """The drive-visible bytes: durable store plus the volatile cache
        overlay.  Pure data plane (no timing) — also the view the sanitizer
        uses for coherency checks."""
        data = self.store.read(sector, nsectors)
        if self.write_cache is not None:
            data = self.write_cache.overlay(sector, nsectors, data)
        return data

    # -- internals ------------------------------------------------------------
    def _power_died(self, plan: "FaultPlan") -> None:
        """Power is gone: volatile contents die, durable state freezes."""
        if self.write_cache is not None:
            lost = self.write_cache.drop_all()
            self.stats.incr("cache_dropped_bytes", lost)
        plan.powered_off = True
        plan.stats.incr("power_faults")
        raise PowerLossError(
            f"power lost at t={plan.power_cut_time:.6f} mid-request")

    def _destage_head(self, host_buf: Buf) -> Generator[Event, Any, None]:
        """Write the cache's oldest entry to the media (real media time,
        charged to ``host_buf``'s service), then commit it durable."""
        cache = self.write_cache
        assert cache is not None and cache.entries
        engine = self.engine
        geom = self.geometry
        entry = cache.entries[0]
        self.track_buffer.invalidate()
        start = engine.now
        sector = entry.sector
        remaining = entry.nsectors
        while remaining > 0:
            cyl, head, idx = geom.to_chs(sector)
            spt = geom.sectors_per_track_at(cyl)
            run = min(remaining, spt - idx)
            yield from self._media_access(host_buf, cyl, head, idx, run)
            self._cyl, self._head = cyl, head
            sector += run
            remaining -= run
        plan = self.fault_plan
        if plan is not None and plan.cuts_power_during(start, engine.now):
            # The destage itself tears at a sector boundary; every other
            # volatile entry is simply gone.
            durable = plan.torn_prefix_sectors(entry, start, engine.now)
            if durable > 0:
                self.store.write(entry.sector,
                                 entry.data[:durable * geom.sector_size])
                if self.integrity is not None:
                    self.integrity.stamp_range(
                        entry.sector, entry.data[:durable * geom.sector_size],
                        entry.integrity_owner)
            self.stats.incr("torn_writes")
            plan.stats.incr("torn_writes")
            plan.stats.incr("torn_sectors_lost", entry.nsectors - durable)
            self._power_died(plan)
        cache.destage_head()
        if self.integrity is not None:
            # Volatile writes become checksummed reality only now: the
            # destage is the point the media (and the record table) see
            # the bytes.
            self.integrity.stamp_range(entry.sector, entry.data,
                                       entry.integrity_owner)

    def _service_flush(self, buf: Buf) -> Generator[Event, Any, None]:
        """Drain the volatile cache to the media, oldest entry first."""
        cache = self.write_cache
        if cache is not None:
            while cache.entries:
                yield from self._destage_head(buf)
        plan = self.fault_plan
        if plan is not None and plan.cuts_power_during(buf.started_at,
                                                       self.engine.now):
            self._power_died(plan)
        if cache is not None:
            cache.note_flush()

    def _fail(self, buf: Buf, decision: Any) -> Generator[Event, Any, None]:
        """Charge the time an injected failure costs, then raise its error."""
        from repro.faults.plan import FaultKind

        engine = self.engine
        self.stats.incr("faulted_requests")
        if decision.kind in (FaultKind.POWER, FaultKind.DEAD):
            # The electronics are dead: instant failure, volatile cache gone.
            if self.write_cache is not None and self.write_cache.entries:
                lost = self.write_cache.drop_all()
                self.stats.incr("cache_dropped_bytes", lost)
            raise decision.error
        if decision.kind is FaultKind.TIMEOUT:
            # The controller goes silent; the request hangs before the
            # driver sees the failure.
            if decision.hang > 0:
                yield engine.timeout(decision.hang)
            raise decision.error
        if decision.kind is FaultKind.MEDIA:
            # The drive retried internally (a rotation's worth) and gave up.
            yield engine.timeout(self.controller_overhead
                                 + self.geometry.rotation_time)
            raise decision.error
        # Transient: the command was issued and failed quickly.
        yield engine.timeout(self.controller_overhead)
        raise decision.error

    def _buffer_read(self, buf: Buf, sector: int, run: int,
                     first_segment: bool) -> Generator[Event, Any, None]:
        """Serve ``run`` sectors from the (possibly still filling) buffer."""
        engine = self.engine
        tb = self.track_buffer
        self.stats.incr("buffer_hits")
        self.stats.incr("buffer_sectors", run)
        bus_time = run * self.geometry.sector_size / self.bus_rate
        if first_segment:
            bus_time += self.buffer_hit_overhead
        available_at = tb.availability(sector + run - 1)
        finish = max(engine.now + bus_time, available_at)
        wait = finish - engine.now
        fill_wait = max(0.0, available_at - engine.now - bus_time)
        self.stats.incr("buffer_fill_wait", fill_wait)
        buf.xfer_time += bus_time
        # Waiting for the platter to rotate sectors into the buffer is
        # rotational time, even though the head never moved.
        buf.seek_rot_time += fill_wait
        tb.consume(sector + run)
        if wait > 0:
            yield engine.timeout(wait)

    def _media_access(self, buf: Buf, cyl: int, head: int, idx: int,
                      run: int) -> Generator[Event, Any, None]:
        """Seek/switch/rotate/transfer ``run`` sectors on one track."""
        engine = self.engine
        geom = self.geometry
        self.stats.incr("media_accesses")
        if cyl != self._cyl:
            # seek_min already includes head settle, so no separate switch.
            seek = geom.seek_time(self._cyl, cyl)
            self.stats.incr("seeks")
            self.stats.incr("seek_time", seek)
            buf.seek_rot_time += seek
            yield engine.timeout(seek)
        elif head != self._head:
            self.stats.incr("head_switches")
            buf.seek_rot_time += geom.head_switch_time
            yield engine.timeout(geom.head_switch_time)
        wait = geom.rotational_wait(engine.now, cyl, head, idx)
        self.stats.incr("rotational_wait", wait)
        transfer = run * geom.sector_time(cyl)
        self.stats.incr("transfer_time", transfer)
        buf.seek_rot_time += wait
        buf.xfer_time += transfer
        yield engine.timeout(wait + transfer)
        # (The service loop restarts the look-ahead fill for reads.)
