"""The buf: a disk I/O request, in the spirit of the BSD ``struct buf``.

A buf carries an operation, a linear sector address, a length, and the data
(for writes; filled in for reads).  Completion is signalled through the
``done`` event (``biowait`` = ``yield buf.done``) and through ``iodone``
callbacks (the ``b_iodone`` hook the clustered putpage path uses to release
write-limit bytes from interrupt context).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class BufOp(enum.Enum):
    """Direction of a disk transfer."""

    READ = "read"
    WRITE = "write"
    #: A cache-flush command: no data, drains the drive's volatile write
    #: cache to the media before completing.
    FLUSH = "flush"


class Buf:
    """One disk request.

    Flags mirror the kernel's: ``async_`` is B_ASYNC (caller does not wait),
    ``ordered`` is the paper's proposed B_ORDER barrier (may not be reordered
    by disksort, the driver, or the controller), and ``fua`` is force unit
    access — the write bypasses any volatile write cache and is durable on
    the media when it completes.
    """

    __slots__ = (
        "id", "op", "sector", "nsectors", "data", "async_", "ordered", "fua",
        "done", "iodone", "owner", "issued_at", "started_at", "finished_at",
        "children", "error", "request", "parent_span", "integrity_owner",
        "member", "seek_rot_time", "xfer_time",
    )

    def __init__(self, engine: "Engine", op: BufOp, sector: int, nsectors: int,
                 data: bytes | None = None, async_: bool = False,
                 ordered: bool = False, fua: bool = False, owner: str = ""):
        if op is BufOp.FLUSH:
            if nsectors != 0 or data is not None:
                raise ValueError("flush buf carries no sectors or data")
        elif nsectors <= 0:
            raise ValueError("nsectors must be positive")
        if sector < 0:
            raise ValueError("sector must be >= 0")
        if op is BufOp.WRITE and data is None:
            raise ValueError("write buf requires data")
        # Per-engine, not per-process: same-seed runs number
        # their bufs identically (trace-export determinism).
        self.id = next(engine.buf_ids)
        self.op = op
        self.sector = sector
        self.nsectors = nsectors
        self.data = data
        self.async_ = async_
        self.ordered = ordered
        self.fua = fua
        self.done: Event = Event(engine, name=f"buf{self.id}.done")
        self.iodone: list[Callable[["Buf"], None]] = []
        self.owner = owner
        self.issued_at = engine.now
        self.started_at: float | None = None
        self.finished_at: float | None = None
        #: For coalesced (driver-clustered) parents: the original requests.
        self.children: list["Buf"] = []
        self.error: BaseException | None = None
        #: The logical I/O request this transfer serves (None for internal
        #: or coalesced-parent bufs); completion reports back to it.
        self.request: "Any | None" = None
        #: The span under which this buf was issued (for the request's
        #: disk_io subtree); meaningful only while tracing.
        self.parent_span: "Any | None" = None
        #: (inode, first logical block) of a file write, for integrity
        #: record attribution; None for metadata/raw/untagged writes.
        self.integrity_owner: "tuple[int, int] | None" = None
        #: Volume member index this transfer was fanned out to; None for
        #: single-disk requests (labels the disk_io span ``disk_io[mN]``).
        self.member: "int | None" = None
        #: Mechanical-position time charged to this transfer: seeks, head
        #: switches, rotational latency, track-buffer fill waits.  Filled
        #: by the disk during service; the request layer turns the pair
        #: into rotation_seek / transfer spans for time attribution.
        self.seek_rot_time = 0.0
        #: Time the bytes actually moved (media sector times, bus time).
        self.xfer_time = 0.0

    @property
    def end_sector(self) -> int:
        """One past the last sector of the request."""
        return self.sector + self.nsectors

    @property
    def nbytes(self) -> int:
        from repro.units import SECTOR_SIZE

        return self.nsectors * SECTOR_SIZE

    @property
    def is_read(self) -> bool:
        return self.op is BufOp.READ

    @property
    def is_write(self) -> bool:
        return self.op is BufOp.WRITE

    @property
    def is_flush(self) -> bool:
        return self.op is BufOp.FLUSH

    @classmethod
    def flush(cls, engine: "Engine", async_: bool = False,
              owner: str = "") -> "Buf":
        """A FLUSH command: an ordered, zero-length barrier that drains the
        drive's volatile write cache (queued behind everything pending)."""
        return cls(engine, BufOp.FLUSH, 0, 0, async_=async_, ordered=True,
                   owner=owner)

    def adjacent_to(self, other: "Buf") -> bool:
        """True if this request is contiguous with ``other`` (either side)."""
        return self.end_sector == other.sector or other.end_sector == self.sector

    def complete(self, error: BaseException | None = None) -> None:
        """Mark the request finished, run iodone hooks, trigger ``done``.

        Completing twice would run the iodone hooks twice (double-crediting
        throttles, double-freeing pages) — it is a simulation bug, reported
        as such rather than as a confusing "event already triggered".
        """
        if self.done.triggered:
            from repro.sim.engine import SimulationError

            raise SimulationError(
                f"{self!r} completed twice (owner={self.owner!r})"
            )
        self.finished_at = self.done.engine.now
        self.error = error
        for hook in self.iodone:
            hook(self)
        if self.request is not None:
            self.request.io_done(self)
        if error is None:
            self.done.succeed(self)
        else:
            self.done.fail(error)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            flag for flag, on in (
                ("A", self.async_), ("O", self.ordered), ("F", self.fua),
            ) if on
        )
        return (
            f"<Buf#{self.id} {self.op.value} sec={self.sector}+{self.nsectors}"
            f"{' ' + flags if flags else ''}>"
        )
