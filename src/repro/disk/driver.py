"""The disk driver: queueing, disksort, coalescing, completion interrupts.

``strategy()`` is the kernel entry point: it enqueues a buf and returns
immediately (asynchronous by construction; synchronous callers ``yield
buf.done``).  A driver process services the queue one request at a time in
``disksort`` (one-way elevator / C-LOOK) order.

Two paper-relevant options:

* ``coalesce=True`` enables *driver clustering*, the alternative the paper
  rejected: adjacent requests already in the queue are merged into one larger
  request.  It helps writes (many can be queued) but not reads (at most the
  primary and one read-ahead are ever outstanding) — the benchmarks show this
  emerging from the model.
* bufs with ``ordered=True`` (the future-work B_ORDER flag) act as barriers:
  disksort may not move later requests ahead of them.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import TYPE_CHECKING

from repro.disk.buf import Buf, BufOp
from repro.disk.disk import RotationalDisk
from repro.errors import (
    DiskError, DiskTimeoutError, MediaError, TransientDiskError,
)
from repro.sim.events import Event
from repro.sim.resources import Signal
from repro.sim.stats import StatSet, TimeWeighted
from repro.units import KB, MS

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu import Cpu
    from repro.sim.engine import Engine


class _Sweep:
    """One elevator sweep: bufs sorted by starting sector."""

    __slots__ = ("bufs",)

    def __init__(self) -> None:
        self.bufs: list[Buf] = []

    def insert_sorted(self, buf: Buf) -> None:
        insort(self.bufs, buf, key=lambda b: b.sector)

    def neighbours(self, buf: Buf) -> tuple[Buf | None, Buf | None]:
        """Queued bufs immediately before/after ``buf``'s sector position."""
        keys = [b.sector for b in self.bufs]
        i = bisect_left(keys, buf.sector)
        before = self.bufs[i - 1] if i > 0 else None
        after = self.bufs[i] if i < len(self.bufs) else None
        return before, after


class DiskQueue:
    """The driver queue: elevator sweeps separated by B_ORDER barriers.

    A pure one-way elevator starves a request parked behind the head while
    a continuous forward stream (e.g. a big sequential write) keeps
    arriving; ``max_passes`` bounds that, as real controllers do: a request
    passed over that many times is served next regardless of position.
    """

    def __init__(self, use_disksort: bool = True, max_passes: int = 8):
        self.use_disksort = use_disksort
        self.max_passes = max_passes
        self._segments: list[tuple[str, list[Buf]]] = []
        self._length = 0
        self._passes: dict[int, int] = {}  # buf id -> times passed over

    def __len__(self) -> int:
        return self._length

    def insert(self, buf: Buf) -> None:
        """Add a request, respecting disksort order and barriers."""
        self._length += 1
        if buf.ordered:
            self._segments.append(("barrier", [buf]))
            return
        if not self._segments or self._segments[-1][0] != "sweep":
            self._segments.append(("sweep", []))
        seg = self._segments[-1][1]
        if self.use_disksort:
            insort(seg, buf, key=lambda b: b.sector)
        else:
            seg.append(buf)

    def pop(self, last_sector: int) -> Buf | None:
        """Next request in one-way elevator order (C-LOOK), or None."""
        while self._segments and not self._segments[0][1]:
            self._segments.pop(0)
        if not self._segments:
            return None
        kind, seg = self._segments[0]
        if kind == "barrier" or not self.use_disksort:
            buf = seg.pop(0)
        else:
            starved = [
                b for b in seg
                if self._passes.get(b.id, 0) >= self.max_passes
            ]
            if starved:
                buf = min(starved, key=lambda b: b.issued_at)
                seg.remove(buf)
            else:
                keys = [b.sector for b in seg]
                i = bisect_left(keys, last_sector)
                if i == len(seg):
                    i = 0  # wrap: next sweep starts at the lowest sector
                buf = seg.pop(i)
                # Everything behind the head was passed over this round.
                for skipped in seg[:i]:
                    self._passes[skipped.id] = self._passes.get(skipped.id, 0) + 1
        self._length -= 1
        self._passes.pop(buf.id, None)
        return buf

    def peek_all(self) -> list[Buf]:
        """All queued bufs (queue order), for tests and introspection."""
        return [b for _, seg in self._segments for b in seg]

    def find_adjacent(self, buf: Buf, max_sectors: int) -> Buf | None:
        """A queued buf adjacent to ``buf`` that could be coalesced with it.

        Only the last (open) sweep is searched — merging across a barrier or
        into an already-dispatched sweep would reorder requests.
        """
        if not self._segments or self._segments[-1][0] != "sweep":
            return None
        sweep = _Sweep()
        sweep.bufs = self._segments[-1][1]
        before, after = sweep.neighbours(buf)
        for cand in (before, after):
            if cand is None or cand.op is not buf.op or cand.ordered:
                continue
            if not cand.adjacent_to(buf):
                continue
            if cand.nsectors + buf.nsectors > max_sectors:
                continue
            return cand
        return None

    def remove(self, buf: Buf) -> None:
        """Remove a specific queued buf (used when coalescing)."""
        for _, seg in self._segments:
            if buf in seg:
                seg.remove(buf)
                self._length -= 1
                # The buf leaves the queue without going through pop():
                # drop its starvation counter or the entry leaks forever.
                self._passes.pop(buf.id, None)
                return
        raise ValueError("buf not in queue")


class DiskDriver:
    """Queue + service process + completion interrupts for one disk."""

    def __init__(self, engine: "Engine", disk: RotationalDisk,
                 cpu: "Cpu | None" = None,
                 use_disksort: bool = True,
                 coalesce: bool = False,
                 coalesce_limit: int = 56 * KB,
                 max_retries: int = 4,
                 retry_backoff: float = 2 * MS,
                 remap_penalty: float = 5 * MS,
                 name: str = "sd0"):
        self.engine = engine
        self.disk = disk
        self.cpu = cpu
        self.name = name
        self.coalesce = coalesce
        self.coalesce_limit_sectors = coalesce_limit // disk.geometry.sector_size
        #: Bounded retries for transient errors and detected timeouts;
        #: attempt n backs off for retry_backoff * 2**(n-1).
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        #: Settle time charged when a bad sector is revectored to a spare.
        self.remap_penalty = remap_penalty
        #: Bad sectors this driver has revectored: sector -> spare slot.
        #: The drive substitutes the spare transparently, so the sector
        #: keeps its logical address; the table exists for introspection
        #: and mirrors a real drive's grown-defect list.
        self.remap_table: dict[int, int] = {}
        self.queue = DiskQueue(use_disksort=use_disksort)
        self.stats = StatSet(f"{name}.driver")
        self.queue_depth = TimeWeighted(engine, 0)
        #: Bytes of buffered data sitting in the queue or in service —
        #: for writes, this is memory pinned by in-flight I/O.
        self.queue_bytes = TimeWeighted(engine, 0)
        self._work = Signal(engine, name=f"{name}.work")
        self._drain_waiters: list[Event] = []
        self._busy = False
        self._last_sector = 0
        engine.process(self._run(), name=f"{name}.driver")

    # -- kernel-facing API ---------------------------------------------------
    def strategy(self, buf: Buf) -> Buf:
        """Enqueue a request.  Returns the buf actually queued (which may be
        a coalesced parent absorbing this one)."""
        self.stats.incr("requests")
        self.stats.incr("bytes", buf.nbytes)
        self.queue_bytes.add(buf.nbytes)
        if self.coalesce and not buf.ordered:
            merged = self._try_coalesce(buf)
            if merged is not None:
                self.queue_depth.set(len(self.queue) + (1 if self._busy else 0))
                self._work.fire()
                return merged
        self.queue.insert(buf)
        self.queue_depth.set(len(self.queue) + (1 if self._busy else 0))
        self._work.fire()
        return buf

    @property
    def idle(self) -> bool:
        """True when nothing is queued or in service."""
        return not self._busy and len(self.queue) == 0

    def drain(self) -> Event:
        """An event that triggers once the driver goes idle."""
        ev = Event(self.engine, name=f"{self.name}.drain")
        if self.idle:
            ev.succeed()
        else:
            self._drain_waiters.append(ev)
        return ev

    # -- coalescing (driver clustering, the rejected alternative) -------------
    def _try_coalesce(self, buf: Buf) -> Buf | None:
        other = self.queue.find_adjacent(buf, self.coalesce_limit_sectors)
        if other is None:
            return None
        self.queue.remove(other)
        first, second = (other, buf) if other.sector < buf.sector else (buf, other)
        parent = Buf(
            self.engine, buf.op, first.sector,
            first.nsectors + second.nsectors,
            data=(first.data or b"") + (second.data or b"") if buf.op is BufOp.WRITE else None,
            async_=first.async_ and second.async_,
            owner="coalesced",
        )
        for child in (first, second):
            if child.children:
                parent.children.extend(child.children)
            else:
                parent.children.append(child)
        self.stats.incr("coalesced")
        self.queue.insert(parent)
        return parent

    # -- service loop ----------------------------------------------------------
    def _run(self):
        while True:
            buf = self.queue.pop(self._last_sector)
            if buf is None:
                if self._drain_waiters:
                    waiters, self._drain_waiters = self._drain_waiters, []
                    for ev in waiters:
                        ev.succeed()
                yield self._work.wait()
                continue
            self._busy = True
            self.queue_depth.set(len(self.queue) + 1)
            error = yield from self._service_with_recovery(buf)
            self._last_sector = buf.end_sector
            if self.cpu is not None:
                intr = self.cpu.interrupt_charge("interrupt", self.cpu.costs.interrupt)
                if intr > 0:
                    yield self.engine.timeout(intr)
            if error is not None and len(buf.children) > 1:
                # A coalesced cluster failed as a whole: dissolve it and
                # retry the original requests individually, so one bad
                # sector cannot fail a whole 56 KB cluster.  The children's
                # queued bytes stay accounted until they complete.
                self._split_retry(buf)
            else:
                self._complete(buf, error)
                self.queue_bytes.add(-buf.nbytes)
            self._busy = False
            self.queue_depth.set(len(self.queue))

    def _service_with_recovery(self, buf: Buf):
        """Service ``buf``, absorbing recoverable faults.

        Transient errors and detected controller timeouts are retried up to
        ``max_retries`` times with exponential backoff; hard media errors
        are revectored to a spare (the bad-block remap table) and retried.
        Returns None on success or the unrecoverable error.
        """
        attempt = 0
        while True:
            try:
                yield from self.disk.service(buf)
                return None
            except MediaError as exc:
                self.stats.incr("media_errors")
                spare = None
                plan = self.disk.fault_plan
                if exc.sector is not None and plan is not None:
                    spare = plan.remap(exc.sector)
                if spare is None:
                    return exc  # unremappable: hard failure
                self.remap_table[exc.sector] = spare
                self.stats.incr("remaps")
                yield self.engine.timeout(self.remap_penalty)
            except (TransientDiskError, DiskTimeoutError) as exc:
                if isinstance(exc, DiskTimeoutError):
                    self.stats.incr("timeouts_detected")
                else:
                    self.stats.incr("transient_errors")
                attempt += 1
                if attempt > self.max_retries:
                    self.stats.incr("retries_exhausted")
                    return exc
                self.stats.incr("retries")
                yield self.engine.timeout(self.retry_backoff * (2 ** (attempt - 1)))
            except DiskError as exc:
                return exc  # power loss and anything else unrecoverable

    def _split_retry(self, parent: Buf) -> None:
        """Re-queue a failed coalesced parent's children individually.

        The parent buf dissolves (nothing waits on it — strategy callers
        wait on their own request); each child is serviced and recovered on
        its own, so the failure is isolated to the sectors that caused it.
        """
        self.stats.incr("split_retries")
        for child in sorted(parent.children, key=lambda b: b.sector):
            self.queue.insert(child)

    def _complete(self, buf: Buf, error: "BaseException | None" = None) -> None:
        self.stats.incr("completions")
        if error is not None:
            self.stats.incr("errors")
        if buf.children:
            self._complete_children(buf, error)
        buf.complete(error)

    def _complete_children(self, parent: Buf,
                           error: "BaseException | None" = None) -> None:
        offset = 0
        for child in sorted(parent.children, key=lambda b: b.sector):
            if error is None and parent.is_read:
                assert parent.data is not None
                child.data = parent.data[offset:offset + child.nbytes]
                offset += child.nbytes
            child.complete(error)
