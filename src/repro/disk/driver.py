"""The disk driver: queueing, disksort, coalescing, completion interrupts.

``strategy()`` is the kernel entry point: it enqueues a buf and returns
immediately (asynchronous by construction; synchronous callers ``yield
buf.done``).  A driver process services the queue one request at a time in
``disksort`` (one-way elevator / C-LOOK) order.

Two paper-relevant options:

* ``coalesce=True`` enables *driver clustering*, the alternative the paper
  rejected: adjacent requests already in the queue are merged into one larger
  request.  It helps writes (many can be queued) but not reads (at most the
  primary and one read-ahead are ever outstanding) — the benchmarks show this
  emerging from the model.
* bufs with ``ordered=True`` (the future-work B_ORDER flag) act as barriers:
  disksort may not move later requests ahead of them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.disk.buf import Buf, BufOp
from repro.disk.disk import RotationalDisk
from repro.disk.sched import Scheduler, make_scheduler
from repro.errors import (
    ChecksumError, DiskError, DiskTimeoutError, MediaError,
    TransientDiskError,
)
from repro.sim.events import Event
from repro.sim.resources import Signal
from repro.sim.stats import Histogram, StatSet, TimeWeighted
from repro.units import KB, MS

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu import Cpu
    from repro.sim.engine import Engine


class DiskQueue:
    """The driver queue: scheduler-ordered sweeps separated by barriers.

    The queue owns the barrier structure (bufs with B_ORDER set may never be
    reordered around); the order *within* a sweep is delegated to a pluggable
    :class:`~repro.disk.sched.Scheduler` — the elevator (``disksort``) by
    default, FIFO when ``use_disksort=False``, or any policy passed in.
    """

    def __init__(self, use_disksort: bool = True, max_passes: int = 8,
                 scheduler: "Scheduler | str | None" = None):
        if scheduler is None:
            scheduler = "elevator" if use_disksort else "fifo"
        if isinstance(scheduler, str):
            scheduler = make_scheduler(scheduler, max_passes=max_passes)
        self.scheduler = scheduler
        self.max_passes = max_passes
        self._segments: list[tuple[str, list[Buf]]] = []
        self._length = 0

    @property
    def use_disksort(self) -> bool:
        """True when the active scheduler keeps sweeps sector-sorted."""
        return self.scheduler.sorts

    @property
    def _passes(self) -> dict[int, int]:
        """The elevator's pass counters (empty for non-elevator policies)."""
        return getattr(self.scheduler, "_passes", {})

    def __len__(self) -> int:
        return self._length

    def insert(self, buf: Buf) -> None:
        """Add a request, respecting scheduler order and barriers."""
        self._length += 1
        if buf.ordered:
            self._segments.append(("barrier", [buf]))
            return
        if not self._segments or self._segments[-1][0] != "sweep":
            self._segments.append(("sweep", []))
        self.scheduler.insert(self._segments[-1][1], buf)

    def pop(self, last_sector: int, now: float = 0.0) -> Buf | None:
        """Next request per the active scheduler, or None.

        ``now`` is the current simulated time, consumed by time-aware
        policies (the deadline scheduler); the pure elevator ignores it.
        """
        while self._segments and not self._segments[0][1]:
            self._segments.pop(0)
        if not self._segments:
            return None
        kind, seg = self._segments[0]
        if kind == "barrier":
            buf = seg.pop(0)
        else:
            buf = seg.pop(self.scheduler.select(seg, last_sector, now))
        self._length -= 1
        self.scheduler.forget(buf)
        return buf

    def snapshot(self) -> Any:
        """Deep-enough copy of the queue: barrier segment boundaries, the
        bufs in each segment, the length, and the scheduler's accounting.
        The bufs themselves are shared (they are identity objects)."""
        return (
            [(kind, list(seg)) for kind, seg in self._segments],
            self._length,
            self.scheduler.snapshot(),
        )

    def restore(self, state: Any) -> None:
        """Return the queue to a :meth:`snapshot`, segment boundaries and
        all.  The snapshot stays valid — restoring it again later yields
        the same state regardless of mutations in between."""
        segments, length, sched_state = state
        self._segments = [(kind, list(seg)) for kind, seg in segments]
        self._length = length
        self.scheduler.restore(sched_state)

    def peek_all(self, last_sector: int = 0, now: float = 0.0) -> list[Buf]:
        """All queued bufs **in predicted service order**, without popping.

        Contract: ``peek_all(s, t)`` returns exactly the sequence repeated
        ``pop(...)`` calls would yield if the head were at ``s`` at time
        ``t`` and no further requests arrived (each pop's ``last_sector``
        advancing to the served buf's end).  The queue and the scheduler's
        internal accounting (e.g. elevator pass counts) are left untouched.
        """
        state = self.snapshot()
        order: list[Buf] = []
        try:
            while True:
                buf = self.pop(last_sector, now)
                if buf is None:
                    break
                order.append(buf)
                last_sector = buf.end_sector
        finally:
            self.restore(state)
        return order

    def find_adjacent(self, buf: Buf, max_sectors: int) -> Buf | None:
        """A queued buf adjacent to ``buf`` that could be coalesced with it.

        Only the last (open) sweep is searched — merging across a barrier or
        into an already-dispatched sweep would reorder requests.  The scan is
        linear because not every scheduler keeps the sweep sector-sorted.
        """
        if not self._segments or self._segments[-1][0] != "sweep":
            return None
        for cand in self._segments[-1][1]:
            if cand.op is not buf.op or cand.ordered:
                continue
            if not cand.adjacent_to(buf):
                continue
            if cand.nsectors + buf.nsectors > max_sectors:
                continue
            return cand
        return None

    def remove(self, buf: Buf) -> None:
        """Remove a specific queued buf (used when coalescing)."""
        for _, seg in self._segments:
            if buf in seg:
                seg.remove(buf)
                self._length -= 1
                # The buf leaves the queue without going through pop():
                # drop its scheduler state or the entry leaks forever.
                self.scheduler.forget(buf)
                return
        raise ValueError("buf not in queue")


class DiskDriver:
    """Queue + service process + completion interrupts for one disk."""

    def __init__(self, engine: "Engine", disk: RotationalDisk,
                 cpu: "Cpu | None" = None,
                 use_disksort: bool = True,
                 coalesce: bool = False,
                 coalesce_limit: int = 56 * KB,
                 max_retries: int = 4,
                 retry_backoff: float = 2 * MS,
                 remap_penalty: float = 5 * MS,
                 scheduler: "Scheduler | str | None" = None,
                 name: str = "sd0"):
        self.engine = engine
        self.disk = disk
        self.cpu = cpu
        self.name = name
        self.coalesce = coalesce
        self.coalesce_limit_sectors = coalesce_limit // disk.geometry.sector_size
        #: Bounded retries for transient errors and detected timeouts;
        #: attempt n backs off for retry_backoff * 2**(n-1).
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        #: Settle time charged when a bad sector is revectored to a spare.
        self.remap_penalty = remap_penalty
        #: Bad sectors this driver has revectored: sector -> spare slot.
        #: The drive substitutes the spare transparently, so the sector
        #: keeps its logical address; the table exists for introspection
        #: and mirrors a real drive's grown-defect list.
        self.remap_table: dict[int, int] = {}
        self.queue = DiskQueue(use_disksort=use_disksort, scheduler=scheduler)
        #: Bufs accepted by strategy() whose completion has not run yet,
        #: by buf id.  Coalesced parents are internal (never registered);
        #: their children stay outstanding until they individually
        #: complete, so split-retry cannot lose one.  The sanitizer's
        #: buf-balance check requires this to be empty at idle.
        self.outstanding: dict[int, Buf] = {}
        self.stats = StatSet(f"{name}.driver")
        self.queue_depth = TimeWeighted(engine, 0)
        #: Per-request time from strategy() to entering service.
        self.wait_hist = Histogram(f"{name}.queue_wait")
        #: Per-request service time (seeks, rotation, transfer, recovery).
        self.service_hist = Histogram(f"{name}.service")
        #: Bytes of buffered data sitting in the queue or in service —
        #: for writes, this is memory pinned by in-flight I/O.
        self.queue_bytes = TimeWeighted(engine, 0)
        self._work = Signal(engine, name=f"{name}.work")
        self._drain_waiters: list[Event] = []
        self._busy = False
        self._last_sector = 0
        engine.process(self._run(), name=f"{name}.driver")

    @property
    def scheduler_name(self) -> str:
        """Name of the active queue scheduler (for reports)."""
        return self.queue.scheduler.name

    def register_metrics(self, registry, ns: str) -> None:
        """Report this driver's instruments into a MetricsRegistry:
        counters at ``ns``, gauges/histograms at ``ns.*``."""
        registry.register(ns, self.stats)
        registry.register(f"{ns}.queue_depth", self.queue_depth)
        registry.register(f"{ns}.queue_bytes", self.queue_bytes)
        registry.register(f"{ns}.wait", self.wait_hist)
        registry.register(f"{ns}.service", self.service_hist)

    # -- kernel-facing API ---------------------------------------------------
    def strategy(self, buf: Buf) -> Buf:
        """Enqueue a request.  Returns the buf actually queued (which may be
        a coalesced parent absorbing this one)."""
        self.stats.incr("requests")
        self.stats.incr("bytes", buf.nbytes)
        self.stats.incr("tracked_issued")
        self.outstanding[buf.id] = buf
        self.queue_bytes.add(buf.nbytes)
        if self.coalesce and not buf.ordered:
            merged = self._try_coalesce(buf)
            if merged is not None:
                self.queue_depth.set(len(self.queue) + (1 if self._busy else 0))
                self._work.fire()
                return merged
        self.queue.insert(buf)
        self.queue_depth.set(len(self.queue) + (1 if self._busy else 0))
        self._work.fire()
        return buf

    def issue_flush(self, owner: str = "flush",
                    request: "Any | None" = None) -> Buf | None:
        """Queue a FLUSH command behind everything pending.

        Returns the flush buf (wait on ``buf.done`` for the durability
        point), or None when the disk has no volatile write cache — the
        stack is write-through and every completed write is already
        durable, so the command would be a no-op.
        """
        if self.disk.write_cache is None:
            return None
        buf = Buf.flush(self.engine, owner=owner)
        if request is not None:
            buf.request = request
            buf.parent_span = getattr(request, "current_span", None)
        self.stats.incr("flushes")
        return self.strategy(buf)

    @property
    def idle(self) -> bool:
        """True when nothing is queued or in service."""
        return not self._busy and len(self.queue) == 0

    def drain(self) -> Event:
        """An event that triggers once the driver goes idle."""
        ev = Event(self.engine, name=f"{self.name}.drain")
        if self.idle:
            ev.succeed()
        else:
            self._drain_waiters.append(ev)
        return ev

    # -- coalescing (driver clustering, the rejected alternative) -------------
    def _try_coalesce(self, buf: Buf) -> Buf | None:
        other = self.queue.find_adjacent(buf, self.coalesce_limit_sectors)
        if other is None:
            return None
        self.queue.remove(other)
        first, second = (other, buf) if other.sector < buf.sector else (buf, other)
        parent = Buf(
            self.engine, buf.op, first.sector,
            first.nsectors + second.nsectors,
            data=(first.data or b"") + (second.data or b"") if buf.op is BufOp.WRITE else None,
            async_=first.async_ and second.async_,
            owner="coalesced",
        )
        for child in (first, second):
            if child.children:
                parent.children.extend(child.children)
            else:
                parent.children.append(child)
        self.stats.incr("coalesced")
        self.queue.insert(parent)
        return parent

    # -- service loop ----------------------------------------------------------
    def _run(self):
        while True:
            buf = self.queue.pop(self._last_sector, now=self.engine.now)
            if buf is None:
                if self._drain_waiters:
                    waiters, self._drain_waiters = self._drain_waiters, []
                    for ev in waiters:
                        ev.succeed()
                yield self._work.wait()
                continue
            self._busy = True
            self.queue_depth.set(len(self.queue) + 1)
            service_start = self.engine.now
            self.wait_hist.observe(service_start - buf.issued_at)
            error = yield from self._service_with_recovery(buf)
            self.service_hist.observe(self.engine.now - service_start)
            self._last_sector = buf.end_sector
            if self.cpu is not None:
                intr = self.cpu.interrupt_charge("interrupt", self.cpu.costs.interrupt)
                if self.disk.integrity is not None and not buf.is_flush:
                    # Checksumming is honest CPU work: verifying a read or
                    # stamping a write costs per-fragment cycles, charged
                    # at completion like the interrupt itself.
                    nfrags = buf.nsectors // self.disk.integrity.frag_sectors
                    intr += self.cpu.interrupt_charge(
                        "checksum", nfrags * self.cpu.costs.checksum_frag)
                if intr > 0:
                    yield self.engine.timeout(intr)
            if error is not None and len(buf.children) > 1:
                # A coalesced cluster failed as a whole: dissolve it and
                # retry the original requests individually, so one bad
                # sector cannot fail a whole 56 KB cluster.  The children's
                # queued bytes stay accounted until they complete.
                self._split_retry(buf)
            else:
                self._complete(buf, error)
                self.queue_bytes.add(-buf.nbytes)
            self._busy = False
            self.queue_depth.set(len(self.queue))

    def _service_with_recovery(self, buf: Buf):
        """Service ``buf``, absorbing recoverable faults.

        Transient errors and detected controller timeouts are retried up to
        ``max_retries`` times with exponential backoff; hard media errors
        are revectored to a spare (the bad-block remap table) and retried.
        Returns None on success or the unrecoverable error.
        """
        attempt = 0
        cs_attempts = 0
        while True:
            try:
                yield from self.disk.service(buf)
                return None
            except MediaError as exc:
                self.stats.incr("media_errors")
                spare = None
                plan = self.disk.fault_plan
                if exc.sector is not None and plan is not None:
                    spare = plan.remap(exc.sector)
                if spare is None:
                    return exc  # unremappable: hard failure
                self.remap_table[exc.sector] = spare
                self.stats.incr("remaps")
                yield self.engine.timeout(self.remap_penalty)
            except (TransientDiskError, DiskTimeoutError) as exc:
                if isinstance(exc, DiskTimeoutError):
                    self.stats.incr("timeouts_detected")
                else:
                    self.stats.incr("transient_errors")
                attempt += 1
                if attempt > self.max_retries:
                    self.stats.incr("retries_exhausted")
                    return exc
                self.stats.incr("retries")
                yield self.engine.timeout(self.retry_backoff * (2 ** (attempt - 1)))
            except ChecksumError as exc:
                # A verification failure is worth exactly one re-read: the
                # first read may have tripped on a marginal transfer, but a
                # second identical mismatch means the *media* is wrong and
                # repair belongs to the scrubber, not the driver.
                self.stats.incr("checksum_errors")
                cs_attempts += 1
                if cs_attempts > 1:
                    return exc
                self.stats.incr("checksum_retries")
                yield self.engine.timeout(self.retry_backoff)
            except DiskError as exc:
                return exc  # power loss and anything else unrecoverable

    def _split_retry(self, parent: Buf) -> None:
        """Re-queue a failed coalesced parent's children individually.

        The parent buf dissolves (nothing waits on it — strategy callers
        wait on their own request); each child is serviced and recovered on
        its own, so the failure is isolated to the sectors that caused it.
        """
        self.stats.incr("split_retries")
        for child in sorted(parent.children, key=lambda b: b.sector):
            self.queue.insert(child)

    def _complete(self, buf: Buf, error: "BaseException | None" = None) -> None:
        self.stats.incr("completions")
        if error is not None:
            self.stats.incr("errors")
        if buf.children:
            self._complete_children(buf, error)
        self._settle(buf)
        buf.complete(error)

    def _complete_children(self, parent: Buf,
                           error: "BaseException | None" = None) -> None:
        offset = 0
        for child in sorted(parent.children, key=lambda b: b.sector):
            if error is None and parent.is_read:
                assert parent.data is not None
                child.data = parent.data[offset:offset + child.nbytes]
                offset += child.nbytes
            self._settle(child)
            child.complete(error)

    def _settle(self, buf: Buf) -> None:
        """Retire a buf from the outstanding table exactly once.

        Coalesced parents were never registered (strategy saw only their
        children), so only tracked bufs count toward the balance.
        """
        if self.outstanding.pop(buf.id, None) is not None:
            self.stats.incr("tracked_completed")
