"""Sector-addressed backing store holding real bytes.

Sparse: only written sectors consume memory; unwritten sectors read back as
zeros (a fresh drive).  This is the *data plane* of the disk model — timing
lives in :mod:`repro.disk.disk`.
"""

from __future__ import annotations

from repro.units import SECTOR_SIZE


class DiskStore:
    """A sparse array of fixed-size sectors."""

    def __init__(self, total_sectors: int, sector_size: int = SECTOR_SIZE):
        if total_sectors <= 0:
            raise ValueError("total_sectors must be positive")
        if sector_size <= 0:
            raise ValueError("sector_size must be positive")
        self.total_sectors = total_sectors
        self.sector_size = sector_size
        self._sectors: dict[int, bytes] = {}
        self._zero = bytes(sector_size)
        #: Bumped every time a System is built over this store.  Background
        #: daemons capture the epoch at start and stand down when it moves —
        #: a remount means the machine they were pacing no longer owns the
        #: bytes.
        self.attach_epoch = 0

    def _check_range(self, sector: int, count: int) -> None:
        if count <= 0:
            raise ValueError("sector count must be positive")
        if sector < 0 or sector + count > self.total_sectors:
            raise ValueError(
                f"sector range [{sector}, {sector + count}) outside device "
                f"of {self.total_sectors} sectors"
            )

    def read(self, sector: int, count: int) -> bytes:
        """Read ``count`` sectors starting at ``sector``."""
        self._check_range(sector, count)
        sectors = self._sectors
        if not sectors:
            return bytes(count * self.sector_size)
        if count == 1:
            return sectors.get(sector, self._zero)
        get = sectors.get
        zero = self._zero
        return b"".join([get(s, zero) for s in range(sector, sector + count)])

    def write(self, sector: int, data: bytes) -> None:
        """Write whole sectors starting at ``sector``."""
        if len(data) % self.sector_size != 0:
            raise ValueError(
                f"write length {len(data)} is not a multiple of sector size "
                f"{self.sector_size}"
            )
        count = len(data) // self.sector_size
        self._check_range(sector, count)
        size = self.sector_size
        sectors = self._sectors
        zero = self._zero
        if count == 1:
            chunk = bytes(data)
            if chunk == zero:
                sectors.pop(sector, None)
            else:
                sectors[sector] = chunk
            return
        # Cluster-sized writes slice through a memoryview: the zero
        # compare costs no copy, and only stored sectors materialize.
        view = memoryview(data)
        for i in range(count):
            chunk = view[i * size:(i + 1) * size]
            if chunk == zero:
                sectors.pop(sector + i, None)
            else:
                sectors[sector + i] = chunk.tobytes()

    def clone(self) -> "DiskStore":
        """An independent copy of the current bytes (a crash snapshot)."""
        dup = DiskStore(self.total_sectors, self.sector_size)
        dup._sectors = dict(self._sectors)
        return dup

    def digest(self) -> str:
        """Canonical content hash of the full image.

        Zero sectors never appear in ``_sectors`` (``write`` pops them), so
        hashing the sorted sparse population is a canonical form: two stores
        hold the same bytes iff their digests match.  The crash-point
        explorer uses this to dedup equivalent crash states.
        """
        import hashlib

        h = hashlib.sha256()
        h.update(f"{self.total_sectors}:{self.sector_size}".encode())
        for sector in sorted(self._sectors):
            h.update(f"|{sector}:".encode())
            h.update(self._sectors[sector])
        return h.hexdigest()

    def nonzero_sectors(self) -> "list[int]":
        """Sorted sector numbers currently holding non-zero data."""
        return sorted(self._sectors)

    def differing_sectors(self, other: "DiskStore") -> "list[int]":
        """Sorted sectors whose bytes differ between two same-size stores
        (what a mirror resync must copy)."""
        if (other.total_sectors != self.total_sectors
                or other.sector_size != self.sector_size):
            raise ValueError("stores differ in size; cannot diff")
        mine, theirs = self._sectors, other._sectors
        return sorted(s for s in mine.keys() | theirs.keys()
                      if mine.get(s) != theirs.get(s))

    @property
    def written_sectors(self) -> int:
        """Number of sectors holding non-zero data (sparse population)."""
        return len(self._sectors)
