"""The volatile write cache: completed != durable.

The paper's footnote 5 rejects acknowledging writes from the drive's
buffer because it breaks the stable-storage promise.  This module models
the drive that does it anyway: a bounded FIFO of completed-but-volatile
writes that become durable only when

* a **FLUSH** command drains the cache to the media (``BufOp.FLUSH``),
* a **FUA** write bypasses it (``Buf.fua`` — force unit access), or
* capacity pressure destages the oldest entry to make room.

``ordered`` (B_ORDER) entries are barriers inside the cache too: the
drive may reorder destaging freely *within* the stretch between two
barriers, but never across one.  The crash-point explorer
(:mod:`repro.faults.crashpoints`) turns exactly that rule into the set of
legal crash states.

The cache also keeps an optional **journal**: the exact sequence of
write/fua/destage/flush events, each carrying the payload bytes and the
originating request (for span attribution).  The journal is what makes a
recorded workload replayable as an enumeration of crash images.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.sim.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.disk.buf import Buf
    from repro.disk.store import DiskStore


class CacheEntry:
    """One completed-but-volatile write sitting in the cache."""

    __slots__ = ("seq", "sector", "nsectors", "data", "ordered", "owner",
                 "request", "integrity_owner")

    def __init__(self, seq: int, sector: int, nsectors: int, data: bytes,
                 ordered: bool, owner: str, request: "Any | None",
                 integrity_owner: "tuple[int, int] | None" = None):
        self.seq = seq
        self.sector = sector
        self.nsectors = nsectors
        self.data = data
        self.ordered = ordered
        self.owner = owner
        #: The logical request that issued the write (span attribution).
        self.request = request
        #: (inode, first logical block) for integrity-record attribution;
        #: carried to destage, where the checksums are stamped.
        self.integrity_owner = integrity_owner

    @property
    def nbytes(self) -> int:
        return len(self.data)

    @property
    def end_sector(self) -> int:
        return self.sector + self.nsectors

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " O" if self.ordered else ""
        return (f"<CacheEntry#{self.seq} sec={self.sector}+{self.nsectors}"
                f"{flag} {self.owner!r}>")


class JournalEvent:
    """One durability-relevant event, in cache order.

    ``kind`` is one of:

    * ``write``   — a write completed into the cache (volatile);
    * ``fua``     — a force-unit-access write went straight to the media;
    * ``destage`` — the head entry became durable (capacity or flush);
    * ``flush``   — a FLUSH command finished draining the cache;
    * ``drop``    — power died and the volatile contents were lost.
    """

    __slots__ = ("kind", "seq", "sector", "nsectors", "data", "ordered",
                 "owner", "request")

    def __init__(self, kind: str, seq: int = -1, sector: int = 0,
                 nsectors: int = 0, data: bytes = b"", ordered: bool = False,
                 owner: str = "", request: "Any | None" = None):
        self.kind = kind
        self.seq = seq
        self.sector = sector
        self.nsectors = nsectors
        self.data = data
        self.ordered = ordered
        self.owner = owner
        self.request = request

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<JournalEvent {self.kind} seq={self.seq} "
                f"sec={self.sector}+{self.nsectors}>")


class VolatileWriteCache:
    """A bounded FIFO of volatile writes in front of a :class:`DiskStore`.

    The disk mechanism owns the timing (destaging charges real media
    time); this object owns the data plane: entry order, the read
    overlay, and the journal.
    """

    def __init__(self, store: "DiskStore", limit_bytes: int,
                 sector_size: int = 512):
        if limit_bytes <= 0:
            raise ValueError("limit_bytes must be positive")
        self.store = store
        self.limit_bytes = limit_bytes
        self.sector_size = sector_size
        self.entries: list[CacheEntry] = []
        self.bytes = 0
        #: When a list, every durability-relevant event is appended to it
        #: (the crash-point explorer's recording hook); None = no journal.
        self.journal: "list[JournalEvent] | None" = None
        self.stats = StatSet("wcache")
        self._seq = 0

    def register_metrics(self, registry, ns: str) -> None:
        """Report the cache's counters into a MetricsRegistry at ``ns``."""
        registry.register(ns, self.stats)

    # -- write plane -------------------------------------------------------
    def write(self, buf: "Buf") -> CacheEntry:
        """Accept a completed (volatile) write into the cache."""
        assert buf.data is not None
        self._seq += 1
        entry = CacheEntry(self._seq, buf.sector, buf.nsectors,
                           bytes(buf.data), buf.ordered, buf.owner,
                           buf.request, buf.integrity_owner)
        self.entries.append(entry)
        self.bytes += entry.nbytes
        self.stats.incr("writes")
        self.stats.incr("cached_bytes", entry.nbytes)
        if self.journal is not None:
            self.journal.append(JournalEvent(
                "write", entry.seq, entry.sector, entry.nsectors, entry.data,
                entry.ordered, entry.owner, entry.request))
        return entry

    @property
    def over_limit(self) -> bool:
        return self.bytes > self.limit_bytes

    def destage_head(self) -> CacheEntry:
        """Make the oldest entry durable (the data-plane half; the disk
        charges the media time before calling this)."""
        entry = self.entries.pop(0)
        self.bytes -= entry.nbytes
        self.store.write(entry.sector, entry.data)
        self.stats.incr("destages")
        if self.journal is not None:
            self.journal.append(JournalEvent(
                "destage", entry.seq, entry.sector, entry.nsectors,
                owner=entry.owner, request=entry.request))
        return entry

    def note_fua(self, buf: "Buf") -> None:
        """Record a force-unit-access write that bypassed the cache."""
        self.stats.incr("fua_writes")
        if self.journal is not None:
            assert buf.data is not None
            self._seq += 1
            self.journal.append(JournalEvent(
                "fua", self._seq, buf.sector, buf.nsectors, bytes(buf.data),
                buf.ordered, buf.owner, buf.request))

    def note_flush(self) -> None:
        """Record that a FLUSH finished (the cache is drained)."""
        assert not self.entries
        self.stats.incr("flushes")
        if self.journal is not None:
            self.journal.append(JournalEvent("flush"))

    def drop_all(self) -> int:
        """Power died: the volatile contents are gone.  Returns bytes lost."""
        lost = self.bytes
        self.entries.clear()
        self.bytes = 0
        self.stats.incr("drops")
        self.stats.incr("dropped_bytes", lost)
        if self.journal is not None:
            self.journal.append(JournalEvent("drop"))
        return lost

    # -- read plane --------------------------------------------------------
    def covers(self, sector: int, nsectors: int) -> bool:
        """True if any cached entry overlaps ``[sector, sector+nsectors)``
        — a read there returns (at least partly) volatile bytes."""
        lo, hi = sector, sector + nsectors
        return any(e.sector < hi and e.end_sector > lo for e in self.entries)

    def overlay(self, sector: int, nsectors: int, data: bytes) -> bytes:
        """``data`` (read from the store) with cached entries applied in
        order — what the drive must return for a read while writes sit in
        its buffer."""
        if not self.entries:
            return data
        lo, hi = sector, sector + nsectors
        ss = self.sector_size
        out: "bytearray | None" = None
        for entry in self.entries:
            if entry.end_sector <= lo or entry.sector >= hi:
                continue
            if out is None:
                out = bytearray(data)
            start = max(entry.sector, lo)
            end = min(entry.end_sector, hi)
            src = (start - entry.sector) * ss
            dst = (start - lo) * ss
            out[dst:dst + (end - start) * ss] = \
                entry.data[src:src + (end - start) * ss]
        if out is None:
            return data
        self.stats.incr("overlay_reads")
        return bytes(out)
