"""Disk geometry: cylinders, heads, zones, skew, and the seek curve.

Sector addresses ("daddr" in kernel terms) are linear sector numbers; the
geometry maps them to (cylinder, head, sector-in-track) and knows the angular
position of every sector, including track and cylinder skew.  Variable
geometry (zoned) drives are supported because the paper uses them as an
argument against user-visible extents: "such a drive may have different
values for the optimal extent size at different locations".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.units import MS, SECTOR_SIZE


@dataclass(frozen=True)
class Zone:
    """A range of cylinders sharing a sectors-per-track count."""

    first_cyl: int
    last_cyl: int  # inclusive
    sectors_per_track: int

    def __post_init__(self) -> None:
        if self.first_cyl < 0 or self.last_cyl < self.first_cyl:
            raise ValueError(f"bad zone cylinder range [{self.first_cyl}, {self.last_cyl}]")
        if self.sectors_per_track <= 0:
            raise ValueError("sectors_per_track must be positive")

    @property
    def cylinders(self) -> int:
        return self.last_cyl - self.first_cyl + 1


@dataclass(frozen=True)
class DiskGeometry:
    """Physical layout and mechanical parameters of a rotational disk.

    The default seek curve is ``seek_min + seek_sqrt * sqrt(d) +
    seek_linear * d`` for a seek of ``d`` cylinders, the standard two-regime
    approximation (acceleration-limited short seeks, velocity-limited long
    ones).
    """

    heads: int
    zones: tuple[Zone, ...]
    rpm: float = 3600.0
    sector_size: int = SECTOR_SIZE
    #: Angular offset, in sectors, between vertically adjacent tracks —
    #: hides the head-switch time on sequential transfers.
    track_skew: int = 3
    #: Additional angular offset applied per cylinder — hides the
    #: track-to-track seek.
    cyl_skew: int = 12
    head_switch_time: float = 0.6 * MS
    seek_min: float = 2.5 * MS  # settle + shortest seek
    seek_sqrt: float = 0.5 * MS
    seek_linear: float = 0.002 * MS

    _zone_first_sector: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.heads <= 0:
            raise ValueError("heads must be positive")
        if self.rpm <= 0:
            raise ValueError("rpm must be positive")
        if not self.zones:
            raise ValueError("at least one zone required")
        expected = 0
        firsts = []
        total = 0
        for zone in self.zones:
            if zone.first_cyl != expected:
                raise ValueError("zones must tile the cylinder range contiguously")
            firsts.append(total)
            total += zone.cylinders * self.heads * zone.sectors_per_track
            expected = zone.last_cyl + 1
        object.__setattr__(self, "_zone_first_sector", tuple(firsts))

    # -- construction helpers ---------------------------------------------
    @classmethod
    def uniform(cls, cylinders: int, heads: int, sectors_per_track: int,
                **kwargs: object) -> "DiskGeometry":
        """A single-zone (fixed geometry) drive."""
        zone = Zone(0, cylinders - 1, sectors_per_track)
        return cls(heads=heads, zones=(zone,), **kwargs)  # type: ignore[arg-type]

    @classmethod
    def ibm_400mb(cls) -> "DiskGeometry":
        """The calibrated stand-in for the paper's 400 MB IBM SCSI drive.

        56 sectors/track at 3600 RPM gives a 1.72 MB/s media rate; 16.7 ms
        rotation makes one 8 KB block pass in ~4.8 ms, matching the paper's
        "minimum rotdelay is one block time, 4 ms" arithmetic to first order.
        """
        return cls.uniform(cylinders=1600, heads=9, sectors_per_track=56)

    @classmethod
    def zoned_520mb(cls) -> "DiskGeometry":
        """A variable-geometry drive (more sectors on outer cylinders)."""
        zones = (
            Zone(0, 499, 72),
            Zone(500, 999, 60),
            Zone(1000, 1599, 48),
        )
        return cls(heads=9, zones=zones)

    # -- basic quantities --------------------------------------------------
    @property
    def cylinders(self) -> int:
        return self.zones[-1].last_cyl + 1

    @property
    def rotation_time(self) -> float:
        """Seconds per revolution."""
        return 60.0 / self.rpm

    @property
    def total_sectors(self) -> int:
        return self._zone_first_sector[-1] + (
            self.zones[-1].cylinders * self.heads * self.zones[-1].sectors_per_track
        )

    @property
    def capacity_bytes(self) -> int:
        return self.total_sectors * self.sector_size

    def zone_of_cyl(self, cyl: int) -> Zone:
        """The zone containing cylinder ``cyl``."""
        if not 0 <= cyl < self.cylinders:
            raise ValueError(f"cylinder {cyl} out of range")
        for zone in self.zones:
            if zone.first_cyl <= cyl <= zone.last_cyl:
                return zone
        raise AssertionError("zones are contiguous; unreachable")

    def sectors_per_track_at(self, cyl: int) -> int:
        return self.zone_of_cyl(cyl).sectors_per_track

    def sector_time(self, cyl: int) -> float:
        """Seconds for one sector to pass under the head at ``cyl``."""
        return self.rotation_time / self.sectors_per_track_at(cyl)

    def media_rate(self, cyl: int) -> float:
        """Sustained media transfer rate (bytes/second) at ``cyl``."""
        return self.sectors_per_track_at(cyl) * self.sector_size / self.rotation_time

    # -- address translation ------------------------------------------------
    def to_chs(self, sector: int) -> tuple[int, int, int]:
        """Linear sector -> (cylinder, head, sector index within track)."""
        if not 0 <= sector < self.total_sectors:
            raise ValueError(f"sector {sector} out of range (0..{self.total_sectors - 1})")
        for zone, first in zip(self.zones, self._zone_first_sector):
            zone_sectors = zone.cylinders * self.heads * zone.sectors_per_track
            if sector < first + zone_sectors:
                rel = sector - first
                spt = zone.sectors_per_track
                cyl_size = self.heads * spt
                cyl = zone.first_cyl + rel // cyl_size
                head = (rel % cyl_size) // spt
                idx = rel % spt
                return cyl, head, idx
        raise AssertionError("unreachable")

    def from_chs(self, cyl: int, head: int, idx: int) -> int:
        """(cylinder, head, sector index) -> linear sector."""
        if not 0 <= head < self.heads:
            raise ValueError(f"head {head} out of range")
        zone = self.zone_of_cyl(cyl)
        if not 0 <= idx < zone.sectors_per_track:
            raise ValueError(f"sector index {idx} out of range for zone")
        zone_index = self.zones.index(zone)
        first = self._zone_first_sector[zone_index]
        rel_cyl = cyl - zone.first_cyl
        return first + (rel_cyl * self.heads + head) * zone.sectors_per_track + idx

    def track_first_sector(self, sector: int) -> int:
        """Linear sector of the first sector on ``sector``'s track."""
        cyl, head, idx = self.to_chs(sector)
        return sector - idx

    # -- angular position ----------------------------------------------------
    def skew_sectors(self, cyl: int, head: int) -> int:
        """Angular offset (in sectors) of sector 0 of the given track.

        Skew is cumulative along the linear track order: each head switch
        within a cylinder adds ``track_skew``; each cylinder crossing adds
        ``cyl_skew``.  This keeps *every* sequential track transition cheap,
        which is what drive manufacturers format skew for.
        """
        spt = self.sectors_per_track_at(cyl)
        per_cyl = (self.heads - 1) * self.track_skew + self.cyl_skew
        return (cyl * per_cyl + head * self.track_skew) % spt

    def sector_angle(self, cyl: int, head: int, idx: int) -> float:
        """Angular position (fraction of a revolution) where ``idx`` starts."""
        spt = self.sectors_per_track_at(cyl)
        return ((idx + self.skew_sectors(cyl, head)) % spt) / spt

    def angle_at(self, t: float) -> float:
        """Spindle angle (fraction of a revolution) at time ``t``."""
        return (t / self.rotation_time) % 1.0

    def rotational_wait(self, t: float, cyl: int, head: int, idx: int) -> float:
        """Seconds until sector ``idx`` of the given track arrives under the head."""
        target = self.sector_angle(cyl, head, idx)
        current = self.angle_at(t)
        frac = (target - current) % 1.0
        return frac * self.rotation_time

    # -- seeking ---------------------------------------------------------------
    def seek_time(self, from_cyl: int, to_cyl: int) -> float:
        """Seconds to move the heads between cylinders (0 if same)."""
        distance = abs(to_cyl - from_cyl)
        if distance == 0:
            return 0.0
        return self.seek_min + self.seek_sqrt * math.sqrt(distance) + self.seek_linear * distance

    def average_seek_time(self) -> float:
        """Seek time for a stroke of one third of the cylinders (convention)."""
        return self.seek_time(0, max(1, self.cylinders // 3))
