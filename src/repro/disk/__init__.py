"""Rotational disk model.

Models the paper's testbed drive — a 400 MB 3.5" IBM SCSI disk with an
on-board controller and a track (look-ahead) buffer — at the level of detail
the paper's arguments require:

* real rotational position as a function of simulated time, so the cost of
  "the disk would have to wait almost a full rotation" emerges naturally;
* track and cylinder skew, so multi-track transfers stream;
* a read-only, write-through track buffer that fills from the first sector of
  a media read to the end of the track (the mechanism behind "the track
  buffer helps only reads");
* a driver with a ``disksort`` elevator queue, optional request coalescing
  (the rejected *driver clustering* alternative), and the future-work
  ``B_ORDER`` barrier flag.

The disk stores real bytes: the data read back is the data written, which
lets integrity tests run against the same stack the benchmarks use.

Above the single disk sits the volume layer (:mod:`repro.disk.volume`):
a pluggable block-device stack offering concat, stripe (RAID-0), and
mirror (RAID-1) volumes whose members are full disk models — each with
its own queue, scheduler, write cache, and fault plan — so member I/Os
genuinely overlap in simulated time.
"""

from repro.disk.buf import Buf, BufOp
from repro.disk.disk import RotationalDisk, TrackBuffer
from repro.disk.driver import DiskDriver, DiskQueue
from repro.disk.geometry import DiskGeometry, Zone
from repro.disk.sched import (
    DeadlineScheduler, ElevatorScheduler, FifoScheduler, Scheduler,
    make_scheduler,
)
from repro.disk.store import DiskStore
from repro.disk.volume import (
    ConcatVolume, MirrorVolume, MultiVolume, SingleVolume, StripeVolume,
    VolumeMember, VolumeSpec, build_volume,
)

__all__ = [
    "Buf",
    "BufOp",
    "ConcatVolume",
    "DeadlineScheduler",
    "DiskDriver",
    "DiskQueue",
    "DiskGeometry",
    "DiskStore",
    "ElevatorScheduler",
    "FifoScheduler",
    "MirrorVolume",
    "MultiVolume",
    "RotationalDisk",
    "Scheduler",
    "SingleVolume",
    "StripeVolume",
    "TrackBuffer",
    "VolumeMember",
    "VolumeSpec",
    "Zone",
    "build_volume",
    "make_scheduler",
]
