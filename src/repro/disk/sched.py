"""Pluggable disk schedulers: the within-sweep service-order policy.

The :class:`~repro.disk.driver.DiskQueue` owns the *structure* of the queue
(elevator sweeps separated by B_ORDER barriers); a :class:`Scheduler`
decides the *order* inside one sweep.  Three policies ship:

``elevator`` (the default)
    Classic ``disksort``: one-way C-LOOK by starting sector, with the
    anti-starvation pass bound real controllers have — a request passed
    over ``max_passes`` times is served next regardless of position.

``fifo``
    Arrival order, as with ``disksort`` compiled out.  Useful as the
    baseline the paper's seek-ordering arguments are made against.

``deadline``
    Elevator order until a request has waited past its deadline, then
    earliest-deadline-first.  Reads get a much shorter deadline than
    writes, which bounds read latency behind the paper's 240 KB asynchronous
    write bursts: a read parked behind a full write queue is promoted after
    ``read_deadline`` seconds instead of riding out the whole sweep.

Every scheduler moves the same bufs to the same sectors — only the order
(and therefore seek time and per-request wait) changes, so on-disk bytes
are identical across schedulers for any workload.

Schedulers are deliberately stateful-per-queue (the elevator's pass counts
live here); :meth:`Scheduler.snapshot`/:meth:`Scheduler.restore` let
``DiskQueue.peek_all`` simulate service order without disturbing that
state.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import TYPE_CHECKING, Any

from repro.units import MS

if TYPE_CHECKING:  # pragma: no cover
    from repro.disk.buf import Buf


class Scheduler:
    """The within-sweep policy interface (base class = FIFO behaviour)."""

    name = "base"
    #: True when insert keeps the sweep sector-sorted (disksort semantics).
    sorts = False

    def insert(self, seg: "list[Buf]", buf: "Buf") -> None:
        """Place ``buf`` into the (open) sweep ``seg``."""
        seg.append(buf)

    def select(self, seg: "list[Buf]", last_sector: int, now: float) -> int:
        """Index of the buf to serve next from a non-empty sweep.

        May mutate internal accounting (e.g. elevator pass counts) — that
        is what :meth:`snapshot`/:meth:`restore` bracket for peeking.
        """
        return 0

    def forget(self, buf: "Buf") -> None:
        """Drop per-buf state once ``buf`` leaves the queue."""

    def snapshot(self) -> Any:
        """Opaque copy of mutable state, for simulation by ``peek_all``."""
        return None

    def restore(self, state: Any) -> None:
        """Undo mutations made since the matching :meth:`snapshot`."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class FifoScheduler(Scheduler):
    """Serve strictly in arrival order."""

    name = "fifo"


class ElevatorScheduler(Scheduler):
    """One-way elevator (C-LOOK) with a starvation bound.

    A pure one-way elevator starves a request parked behind the head while
    a continuous forward stream (e.g. a big sequential write) keeps
    arriving; ``max_passes`` bounds that: a request passed over that many
    times is served next (oldest first), regardless of position.
    """

    name = "elevator"
    sorts = True

    def __init__(self, max_passes: int = 8):
        self.max_passes = max_passes
        self._passes: dict[int, int] = {}  # buf id -> times passed over

    def insert(self, seg: "list[Buf]", buf: "Buf") -> None:
        insort(seg, buf, key=lambda b: b.sector)

    def select(self, seg: "list[Buf]", last_sector: int, now: float) -> int:
        starved = [
            i for i, b in enumerate(seg)
            if self._passes.get(b.id, 0) >= self.max_passes
        ]
        if starved:
            return min(starved, key=lambda i: seg[i].issued_at)
        keys = [b.sector for b in seg]
        i = bisect_left(keys, last_sector)
        if i == len(seg):
            i = 0  # wrap: next sweep starts at the lowest sector
        # Everything behind the head was passed over this round.
        for skipped in seg[:i]:
            self._passes[skipped.id] = self._passes.get(skipped.id, 0) + 1
        return i

    def forget(self, buf: "Buf") -> None:
        self._passes.pop(buf.id, None)

    def snapshot(self) -> Any:
        return dict(self._passes)

    def restore(self, state: Any) -> None:
        # Copy: adopting the snapshot dict itself would let later mutations
        # bleed into it, so restoring the same snapshot twice (as nested
        # peeks or queue save/restore cycles do) would replay the first
        # restore's mutations instead of the saved state.
        self._passes = dict(state)


class DeadlineScheduler(ElevatorScheduler):
    """Elevator order with per-request deadlines (reads before writes).

    Each request's deadline is ``issued_at + read_deadline`` (reads) or
    ``issued_at + write_deadline`` (writes).  While nothing is late the
    policy is exactly the elevator; once requests are past deadline the
    latest-suffering one (earliest deadline) is served first.  With the
    paper's 240 KB write limit a full write burst takes a couple hundred
    milliseconds to drain — ``read_deadline`` caps what a synchronous read
    can be made to wait behind it.
    """

    name = "deadline"

    def __init__(self, read_deadline: float = 60 * MS,
                 write_deadline: float = 400 * MS, max_passes: int = 8):
        super().__init__(max_passes=max_passes)
        if read_deadline <= 0 or write_deadline <= 0:
            raise ValueError("deadlines must be positive")
        self.read_deadline = read_deadline
        self.write_deadline = write_deadline

    def deadline_of(self, buf: "Buf") -> float:
        return buf.issued_at + (
            self.read_deadline if buf.is_read else self.write_deadline
        )

    def select(self, seg: "list[Buf]", last_sector: int, now: float) -> int:
        expired = [i for i, b in enumerate(seg) if self.deadline_of(b) <= now]
        if expired:
            return min(expired,
                       key=lambda i: (self.deadline_of(seg[i]), seg[i].issued_at))
        return super().select(seg, last_sector, now)


SCHEDULERS = {
    "elevator": ElevatorScheduler,
    "fifo": FifoScheduler,
    "deadline": DeadlineScheduler,
}


def make_scheduler(name: str, **kwargs: Any) -> Scheduler:
    """Build a scheduler by name (``elevator``, ``fifo``, ``deadline``).

    Keyword arguments a given policy does not take are dropped, so callers
    can pass e.g. ``max_passes`` uniformly.
    """
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r} (have {sorted(SCHEDULERS)})"
        ) from None
    if cls is FifoScheduler:
        kwargs = {}
    elif cls is ElevatorScheduler:
        kwargs = {k: v for k, v in kwargs.items() if k == "max_passes"}
    return cls(**kwargs)
