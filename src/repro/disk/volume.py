"""The volume manager: a pluggable block-device layer over member disks.

The kernel above the driver boundary speaks to *one* block device: it calls
``strategy(buf)`` with linear sector addresses and waits on ``buf.done``.
This module keeps that contract while letting the device be built from
several spindles:

* :class:`SingleVolume` — today's one-disk stack, byte-identical (the
  member's :class:`~repro.disk.driver.DiskDriver` *is* the device);
* :class:`ConcatVolume` — members appended end to end (JBOD);
* :class:`StripeVolume` — RAID-0: logical space dealt round-robin in
  ``chunk``-sized stripes, so one clustered request fans out and the
  member transfers overlap in simulated time;
* :class:`MirrorVolume` — RAID-1: every write goes to all live members,
  reads are balanced (round-robin or shortest-queue), a dead member
  degrades the volume instead of failing it, and :meth:`MirrorVolume.
  resync` copies a survivor onto a replaced member.

Each member keeps its own :class:`~repro.disk.store.DiskStore`,
:class:`~repro.disk.disk.RotationalDisk`, :class:`~repro.disk.driver.
DiskDriver` (queue + scheduler), optional :class:`~repro.disk.wcache.
VolatileWriteCache`, and :class:`~repro.faults.plan.FaultPlan` — faults and
queueing are per spindle, exactly as on real hardware.

Barrier semantics: a FLUSH fans out to every live member that has a
volatile cache and is durable only when every one of them acks (a mirror
tolerates dead members: the survivors' acks are the durability point).
``ordered`` data writes remain barriers *within* each member's queue; the
volume does not serialize unrelated members against each other.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Generator

from repro.disk.buf import Buf, BufOp
from repro.disk.disk import RotationalDisk
from repro.disk.driver import DiskDriver
from repro.disk.geometry import DiskGeometry, Zone
from repro.disk.store import DiskStore
from repro.core.health import ClusterHealth
from repro.errors import InvalidArgumentError, MemberDeadError
from repro.sim.events import Event
from repro.sim.stats import Histogram, StatSet, TimeWeighted
from repro.units import KB, SECTOR_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu import Cpu
    from repro.faults.plan import FaultPlan
    from repro.integrity.checksum import IntegrityRegion
    from repro.kernel.config import SystemConfig
    from repro.sim.engine import Engine


# ---------------------------------------------------------------------------
# layout specification


def _parse_size(text: str) -> int:
    text = text.strip().lower()
    mult = 1
    if text.endswith("k"):
        mult, text = KB, text[:-1]
    elif text.endswith("m"):
        mult, text = KB * KB, text[:-1]
    try:
        return int(text) * mult
    except ValueError:
        raise InvalidArgumentError(f"bad size {text!r} in volume spec") from None


@dataclasses.dataclass(frozen=True)
class VolumeSpec:
    """A parsed ``--layout`` string: what to build over how many members.

    Syntax: ``single`` | ``concat:N`` | ``stripe:N[:chunk=64k]`` |
    ``mirror:N[:read=rr|shortest]``.
    """

    kind: str = "single"
    nmembers: int = 1
    chunk_bytes: int = 64 * KB
    read_policy: str = "rr"

    @classmethod
    def parse(cls, text: "str | VolumeSpec | None") -> "VolumeSpec":
        if text is None:
            return cls()
        if isinstance(text, VolumeSpec):
            return text
        parts = [p for p in text.strip().lower().split(":") if p]
        if not parts:
            return cls()
        kind = parts[0]
        if kind not in ("single", "concat", "stripe", "mirror"):
            raise InvalidArgumentError(f"unknown volume kind {kind!r}")
        nmembers = 1
        rest = parts[1:]
        if rest and "=" not in rest[0]:
            try:
                nmembers = int(rest[0])
            except ValueError:
                raise InvalidArgumentError(
                    f"bad member count {rest[0]!r} in volume spec") from None
            rest = rest[1:]
        elif kind != "single":
            raise InvalidArgumentError(f"{kind} layout needs a member count")
        chunk_bytes = 64 * KB
        read_policy = "rr"
        for opt in rest:
            key, _, value = opt.partition("=")
            if key == "chunk":
                chunk_bytes = _parse_size(value)
            elif key == "read":
                if value not in ("rr", "shortest"):
                    raise InvalidArgumentError(
                        f"unknown mirror read policy {value!r}")
                read_policy = value
            else:
                raise InvalidArgumentError(f"unknown volume option {key!r}")
        if kind == "single":
            if nmembers != 1:
                raise InvalidArgumentError("single layout has exactly 1 member")
        elif nmembers < 2:
            raise InvalidArgumentError(f"{kind} layout needs >= 2 members")
        if chunk_bytes <= 0 or chunk_bytes % SECTOR_SIZE != 0:
            raise InvalidArgumentError(
                f"chunk {chunk_bytes} must be a positive sector multiple")
        return cls(kind=kind, nmembers=nmembers, chunk_bytes=chunk_bytes,
                   read_policy=read_policy)

    def describe(self) -> str:
        if self.kind == "single":
            return "single"
        out = f"{self.kind}:{self.nmembers}"
        if self.kind == "stripe":
            out += f":chunk={self.chunk_bytes // KB}k"
        if self.kind == "mirror":
            out += f":read={self.read_policy}"
        return out


def concat_geometry(geom: DiskGeometry, n: int) -> DiskGeometry:
    """The logical geometry of ``n`` concatenated copies of ``geom``: the
    zones tiled ``n`` times over a cylinder range ``n`` times as long, so
    linear sector arithmetic, zone boundaries, and per-zone transfer rates
    carry over to the logical device."""
    zones: list[Zone] = []
    cyl = 0
    for _ in range(n):
        for z in geom.zones:
            zones.append(Zone(cyl, cyl + z.cylinders - 1, z.sectors_per_track))
            cyl += z.cylinders
    return dataclasses.replace(geom, zones=tuple(zones))


# ---------------------------------------------------------------------------
# members


class VolumeMember:
    """One spindle of a volume: its own store, disk, queue, and faults."""

    def __init__(self, engine: "Engine", index: int, config: "SystemConfig",
                 cpu: "Cpu | None" = None,
                 store: "DiskStore | None" = None,
                 fault_plan: "FaultPlan | None" = None):
        cfg = config
        self.index = index
        self.name = f"sd{index}"
        self.store = store if store is not None else DiskStore(
            cfg.geometry.total_sectors, cfg.geometry.sector_size)
        self.fault_plan = fault_plan
        write_cache = None
        if cfg.write_cache:
            from repro.disk.wcache import VolatileWriteCache

            write_cache = VolatileWriteCache(
                self.store, cfg.write_cache_bytes,
                sector_size=cfg.geometry.sector_size)
        self.write_cache = write_cache
        self.disk = RotationalDisk(engine, cfg.geometry, self.store,
                                   track_buffer=cfg.track_buffer,
                                   fault_plan=fault_plan,
                                   write_cache=write_cache)
        sched = cfg.scheduler
        if sched == "elevator" and not cfg.use_disksort:
            sched = "fifo"  # legacy switch: disksort off = FIFO queue
        self.driver = DiskDriver(engine, self.disk, cpu=cpu,
                                 use_disksort=cfg.use_disksort,
                                 coalesce=cfg.driver_coalesce,
                                 scheduler=sched, name=self.name)
        #: Consecutive-failure state machine; ``degraded`` (or a
        #: MemberDeadError) fails the member out of a mirror.
        self.health = ClusterHealth(threshold=2)
        self.failed = False
        #: Excluded from mirror *reads* while a resync copies onto it
        #: (writes already include it, so it cannot fall further behind).
        self.resyncing = False

    @property
    def live(self) -> bool:
        return not self.failed


# ---------------------------------------------------------------------------
# the single-disk facade (the default — today's stack, unchanged)


class SingleVolume:
    """Facade over the classic one-disk stack.

    The member's :class:`DiskDriver` is the device and the member's disk,
    store, and cache are used directly — construction order and object
    identity match the pre-volume ``System`` exactly, which is what keeps
    the default layout byte- and digest-identical.
    """

    kind = "single"

    def __init__(self, member: VolumeMember):
        self.members = [member]
        self.spec = VolumeSpec()

    @property
    def geometry(self) -> DiskGeometry:
        return self.members[0].disk.geometry

    @property
    def store(self) -> DiskStore:
        return self.members[0].store

    @property
    def disk(self) -> RotationalDisk:
        return self.members[0].disk

    @property
    def device(self) -> DiskDriver:
        return self.members[0].driver

    @property
    def cache_view(self):
        return self.members[0].write_cache

    def write_caches(self) -> "list[tuple[str, Any]]":
        cache = self.members[0].write_cache
        return [(self.members[0].name, cache)] if cache is not None else []

    def describe(self) -> str:
        return "single"

    def register_metrics(self, registry) -> None:
        """Report the one-disk stack into a system MetricsRegistry."""
        member = self.members[0]
        member.driver.register_metrics(registry, "disk.driver")
        registry.register("disk.mech", member.disk.stats)
        if member.write_cache is not None:
            member.write_cache.register_metrics(registry, "disk.wcache")


# ---------------------------------------------------------------------------
# logical views: store, cache, integrity


class VolumeStore:
    """Data-plane view of a multi-member volume as one sparse sector array.

    Mirrors write every member and read the first live one; stripes and
    concats translate piecewise.  Offline tools (mkfs, fsck, the crash
    differ) use this exactly like a :class:`DiskStore`.
    """

    def __init__(self, volume: "MultiVolume"):
        self.volume = volume
        self.total_sectors = volume.logical_sectors
        self.sector_size = volume.members[0].store.sector_size

    def _check_range(self, sector: int, count: int) -> None:
        if count <= 0:
            raise ValueError("sector count must be positive")
        if sector < 0 or sector + count > self.total_sectors:
            raise ValueError(
                f"sector range [{sector}, {sector + count}) outside device "
                f"of {self.total_sectors} sectors"
            )

    def read(self, sector: int, count: int) -> bytes:
        self._check_range(sector, count)
        vol = self.volume
        parts = [vol.members[mi].store.read(msec, cnt)
                 for mi, msec, cnt in vol.data_read_pieces(sector, count)]
        return b"".join(parts)

    def write(self, sector: int, data: bytes) -> None:
        if len(data) % self.sector_size != 0:
            raise ValueError(
                f"write length {len(data)} is not a multiple of sector size "
                f"{self.sector_size}"
            )
        count = len(data) // self.sector_size
        self._check_range(sector, count)
        ss = self.sector_size
        for mi, msec, cnt, off in self.volume.data_write_pieces(sector, count):
            self.volume.members[mi].store.write(
                msec, data[off * ss:(off + cnt) * ss])

    def clone(self) -> DiskStore:
        """An independent single-store snapshot of the logical bytes."""
        dup = DiskStore(self.total_sectors, self.sector_size)
        for sector in self.nonzero_sectors():
            dup.write(sector, self.read(sector, 1))
        return dup

    def digest(self) -> str:
        """Canonical content hash of the logical image (same form as
        :meth:`DiskStore.digest`, so equal logical bytes hash equal)."""
        import hashlib

        h = hashlib.sha256()
        h.update(f"{self.total_sectors}:{self.sector_size}".encode())
        for sector in self.nonzero_sectors():
            h.update(f"|{sector}:".encode())
            h.update(self.read(sector, 1))
        return h.hexdigest()

    def nonzero_sectors(self) -> "list[int]":
        vol = self.volume
        out: set[int] = set()
        for member in vol.data_source_members():
            for msec in member.store.nonzero_sectors():
                out.add(vol.logical_of(member.index, msec))
        return sorted(out)

    @property
    def written_sectors(self) -> int:
        return len(self.nonzero_sectors())


class VolumeCacheView:
    """Read-only logical view over the members' volatile write caches —
    just enough surface (truthiness + ``covers``) for the read-verify and
    sanitizer paths that ask "could this logical range be volatile?"."""

    def __init__(self, volume: "MultiVolume"):
        self.volume = volume
        self.sector_size = volume.members[0].store.sector_size
        #: Crash-point journaling is a single-layout feature; the attribute
        #: exists so recorder hooks fail soft rather than with AttributeError.
        self.journal = None

    @property
    def entries(self) -> list:
        out: list = []
        for member in self.volume.members:
            if member.write_cache is not None:
                out.extend(member.write_cache.entries)
        return out

    @property
    def bytes(self) -> int:
        return sum(m.write_cache.bytes for m in self.volume.members
                   if m.write_cache is not None)

    def covers(self, sector: int, nsectors: int) -> bool:
        for mi, msec, cnt in self.volume.data_read_pieces(sector, nsectors):
            for member in self.volume.data_source_members():
                if self.volume.kind != "mirror" and member.index != mi:
                    continue
                cache = member.write_cache
                if cache is not None and cache.covers(msec, cnt):
                    return True
        return False


class _MemberCacheAdapter:
    """Translates the integrity region's *logical* ``covers`` probes back
    into one member's cache addresses (used during member read verify)."""

    def __init__(self, volume: "MultiVolume", index: int, cache):
        self.volume = volume
        self.index = index
        self.cache = cache

    def covers(self, sector: int, nsectors: int) -> bool:
        return self.cache.covers(
            self.volume.member_sector_of(self.index, sector), nsectors)


class MemberIntegrityView:
    """One member's window onto the volume's logical integrity region.

    The region is addressed by *logical* fragment; a member disk services
    bufs with *member* sector addresses.  This view translates each member
    range to its logical pieces and delegates stamping/verification to the
    shared region, adjusting the ``(inode, lbn)`` owner per piece (pieces
    beyond the first sit whole blocks later in the file iff the gap is
    block-aligned; otherwise the restamp keeps the old attribution).
    """

    def __init__(self, region: "IntegrityRegion", volume: "MultiVolume",
                 index: int):
        self.region = region
        self.volume = volume
        self.index = index
        self.frag_sectors = region.frag_sectors

    def _piece_owner(self, owner, first_lsec: int, lsec: int):
        if owner is None or lsec == first_lsec:
            return owner
        delta = lsec - first_lsec
        bs = self.region.block_sectors
        if delta % bs != 0:
            return None
        return (owner[0], owner[1] + delta // bs)

    def stamp_range(self, sector: int, data: bytes, owner=None) -> int:
        ss = SECTOR_SIZE
        pieces = self.volume.member_to_logical(
            self.index, sector, len(data) // ss)
        first_lsec = pieces[0][0]
        stamped = 0
        for lsec, off, cnt in pieces:
            stamped += self.region.stamp_range(
                lsec, data[off * ss:(off + cnt) * ss],
                self._piece_owner(owner, first_lsec, lsec))
        return stamped

    def verify_range(self, sector: int, data: bytes,
                     cache=None) -> "list[tuple[int, str]]":
        ss = SECTOR_SIZE
        wrapped = None if cache is None else _MemberCacheAdapter(
            self.volume, self.index, cache)
        bad: list[tuple[int, str]] = []
        for lsec, off, cnt in self.volume.member_to_logical(
                self.index, sector, len(data) // ss):
            bad.extend(self.region.verify_range(
                lsec, data[off * ss:(off + cnt) * ss], cache=wrapped))
        return bad


class VolumeDisk:
    """The logical "disk" a multi-member volume presents upward: geometry
    spanning the members, the logical store, the shared integrity region,
    and a drive-visible ``read_through`` assembled from the members."""

    def __init__(self, volume: "MultiVolume", geometry: DiskGeometry):
        self.volume = volume
        self.geometry = geometry
        self.store = volume.store
        self.integrity: "IntegrityRegion | None" = None
        self.stats = StatSet("disk")

    @property
    def write_cache(self):
        """A logical cache view when any member caches writes, else None —
        the truthiness contract ``ufs.io`` keys its flush decisions on."""
        if any(m.write_cache is not None for m in self.volume.members):
            return self.volume.cache_view
        return None

    @property
    def fault_plan(self):
        """Per-member plans live on the member disks; the logical device
        has none (driver-level remap consults members individually)."""
        return None

    def read_through(self, sector: int, nsectors: int) -> bytes:
        vol = self.volume
        parts = [vol.members[mi].disk.read_through(msec, cnt)
                 for mi, msec, cnt in vol.data_read_pieces(sector, nsectors)]
        return b"".join(parts)

    def attach_integrity(self, region: "IntegrityRegion | None" = None):
        """Find (or accept) the region on the *logical* store and install a
        translated view on every member disk, so member-level reads verify
        and member-level writes stamp against the shared table."""
        if region is None:
            from repro.integrity.checksum import IntegrityRegion

            region = IntegrityRegion.find(self.store)
        self.integrity = region
        for member in self.volume.members:
            member.disk.integrity = (
                None if region is None
                else MemberIntegrityView(region, self.volume, member.index))
        if region is not None:
            chunk = getattr(self.volume, "chunk_sectors", None)
            if chunk is not None and chunk % region.frag_sectors != 0:
                raise InvalidArgumentError(
                    f"stripe chunk of {chunk} sectors does not align with "
                    f"{region.frag_sectors}-sector fragments")
        return region


# ---------------------------------------------------------------------------
# the multi-member device


class _VolumeQueueView:
    """len()-able stand-in for a driver queue: the members' queued total."""

    def __init__(self, volume: "MultiVolume"):
        self.volume = volume

    def __len__(self) -> int:
        return sum(len(m.driver.queue) for m in self.volume.members)


class _JoinState:
    """Book-keeping for one fanned-out parent buf until all children ack."""

    __slots__ = ("parent", "pending", "error", "first_start", "ok", "tried",
                 "buffer")

    def __init__(self, parent: Buf):
        self.parent = parent
        self.pending = 0
        self.error: "BaseException | None" = None
        self.first_start: "float | None" = None
        self.ok = 0
        self.tried: set[int] = set()
        self.buffer: "bytearray | None" = (
            bytearray(parent.nbytes) if parent.is_read else None)


class MultiVolume:
    """Shared machinery of concat/stripe/mirror: the driver-shaped device
    that splits parent bufs into member children and joins completions.

    The volume has no service process of its own — ``strategy`` fans out
    synchronously and the join runs in the children's completion hooks, so
    member I/Os overlap exactly as their own queues and spindles allow.
    """

    kind = "multi"
    #: Redundant volumes (mirrors) survive member write/flush failures.
    redundant = False

    def __init__(self, engine: "Engine", members: "list[VolumeMember]",
                 spec: VolumeSpec, geometry: DiskGeometry,
                 name: str = "vol0"):
        self.engine = engine
        self.members = members
        self.spec = spec
        self.name = name
        self.geometry = geometry
        self.logical_sectors = self._logical_sectors()
        self.store = VolumeStore(self)
        self.disk = VolumeDisk(self, geometry)
        self._cache_view = VolumeCacheView(self)
        #: The device the kernel talks to is the volume itself.
        self.device = self
        self.stats = StatSet(f"{name}.driver")
        self.outstanding: dict[int, Buf] = {}
        self.queue_depth = TimeWeighted(engine, 0)
        self.queue_bytes = TimeWeighted(engine, 0)
        self.wait_hist = Histogram(f"{name}.queue_wait")
        self.service_hist = Histogram(f"{name}.service")
        self.queue = _VolumeQueueView(self)

    # -- mapping hooks (subclasses) ----------------------------------------
    def _logical_sectors(self) -> int:
        raise NotImplementedError

    def extents(self, sector: int, nsectors: int,
                write: bool) -> "list[tuple[int, int, int]]":
        """Timed-path mapping: ``(member, member_sector, count)`` per child
        buf.  Mirror policy (read balancing, all-live-member writes) and
        same-member merging live here."""
        raise NotImplementedError

    def member_to_logical(self, index: int, msector: int,
                          nsectors: int) -> "list[tuple[int, int, int]]":
        """``(logical_sector, offset_in_member_range, count)`` pieces of a
        member range, in ascending member order."""
        raise NotImplementedError

    def logical_of(self, index: int, msector: int) -> int:
        """The logical address of one member sector."""
        raise NotImplementedError

    def member_sector_of(self, index: int, lsector: int) -> int:
        """Inverse of :meth:`logical_of` for a sector that lives on
        ``index`` (callers guarantee it does)."""
        raise NotImplementedError

    def data_read_pieces(self, sector: int,
                         count: int) -> "list[tuple[int, int, int]]":
        """Untimed data-plane read mapping, logical order, unmerged."""
        raise NotImplementedError

    def data_write_pieces(self, sector: int,
                          count: int) -> "list[tuple[int, int, int, int]]":
        """Untimed data-plane write mapping: ``(member, member_sector,
        count, offset_in_range)``; mirrors repeat the range per member."""
        raise NotImplementedError

    def data_source_members(self) -> "list[VolumeMember]":
        """Members whose stores define the logical contents."""
        return self.members

    # -- driver-shaped surface ---------------------------------------------
    @property
    def cache_view(self) -> "VolumeCacheView | None":
        if any(m.write_cache is not None for m in self.members):
            return self._cache_view
        return None

    @property
    def scheduler_name(self) -> str:
        return self.members[0].driver.scheduler_name

    @property
    def idle(self) -> bool:
        return not self.outstanding and all(
            m.driver.idle for m in self.members)

    @property
    def _busy(self) -> bool:
        return any(m.driver._busy for m in self.members)

    def describe(self) -> str:
        return self.spec.describe()

    def write_caches(self) -> "list[tuple[str, Any]]":
        return [(m.name, m.write_cache) for m in self.members
                if m.write_cache is not None]

    def register_metrics(self, registry) -> None:
        """Report the volume and every member spindle into a system
        MetricsRegistry: the fan-out/join layer at ``volume``, member
        ``i``'s stack under ``disk.m{i}``."""
        registry.register("volume", self.stats)
        registry.register("volume.queue_depth", self.queue_depth)
        registry.register("volume.queue_bytes", self.queue_bytes)
        registry.register("volume.wait", self.wait_hist)
        registry.register("volume.service", self.service_hist)
        for member in self.members:
            prefix = f"disk.m{member.index}"
            member.driver.register_metrics(registry, f"{prefix}.driver")
            registry.register(f"{prefix}.mech", member.disk.stats)
            if member.write_cache is not None:
                member.write_cache.register_metrics(registry,
                                                    f"{prefix}.wcache")

    def strategy(self, buf: Buf) -> Buf:
        self.stats.incr("requests")
        self.stats.incr("bytes", buf.nbytes)
        self.stats.incr("tracked_issued")
        self.outstanding[buf.id] = buf
        self.queue_bytes.add(buf.nbytes)
        self.queue_depth.set(len(self.outstanding))
        if buf.is_flush:
            self._fan_flush(buf)
        else:
            self._fan_out(buf)
        return buf

    def issue_flush(self, owner: str = "flush",
                    request: "Any | None" = None) -> "Buf | None":
        if self.disk.write_cache is None:
            return None
        buf = Buf.flush(self.engine, owner=owner)
        if request is not None:
            buf.request = request
            buf.parent_span = getattr(request, "current_span", None)
        self.stats.incr("flushes")
        return self.strategy(buf)

    def drain(self) -> Event:
        """An event that triggers once the whole volume goes idle."""
        ev = Event(self.engine, name=f"{self.name}.drain")
        if self.idle:
            ev.succeed()
            return ev

        def _wait() -> Generator[Any, Any, None]:
            while not self.idle:
                for member in self.members:
                    if not member.driver.idle:
                        yield member.driver.drain()
                        break
                else:
                    # Members are idle; outstanding parents complete inside
                    # member completions, so this settles next tick.
                    yield self.engine.timeout(0)
            ev.succeed()

        self.engine.process(_wait(), name=f"{self.name}.drain")
        return ev

    # -- fan-out -----------------------------------------------------------
    def _fan_out(self, parent: Buf) -> None:
        write = parent.is_write
        extents = self.extents(parent.sector, parent.nsectors, write=write)
        if not extents:
            self._finish_parent(parent, _JoinState(parent), all_dead=True)
            return
        state = _JoinState(parent)
        state.tried.update(mi for mi, _, _ in extents)
        children: list[tuple[VolumeMember, Buf]] = []
        ss = SECTOR_SIZE
        for mi, msec, cnt in extents:
            data = None
            if write:
                assert parent.data is not None
                out = bytearray(cnt * ss)
                for lsec, off, n in self.member_to_logical(mi, msec, cnt):
                    src = (lsec - parent.sector) * ss
                    out[off * ss:(off + n) * ss] = \
                        parent.data[src:src + n * ss]
                data = bytes(out)
            child = Buf(self.engine, parent.op, msec, cnt, data=data,
                        async_=True, ordered=parent.ordered, fua=parent.fua,
                        owner=parent.owner)
            child.member = mi
            child.request = parent.request
            child.parent_span = parent.parent_span
            if write:
                child.integrity_owner = self._child_owner(parent, mi, msec)
            children.append((self.members[mi], child))
        # Member transfers carry the request from here on: span labeling
        # and per-request I/O accounting see the fan-out, not the parent.
        parent.request = None
        state.pending = len(children)
        self.stats.incr("fanout_children", len(children))
        for member, child in children:
            child.iodone.append(self._join_hook(state, member))
            member.driver.strategy(child)

    def _child_owner(self, parent: Buf, mi: int, msec: int):
        owner = parent.integrity_owner
        region = self.disk.integrity
        if owner is None or region is None:
            return None
        first_lsec = self.logical_of(mi, msec)
        delta = first_lsec - parent.sector
        if (parent.sector % region.frag_sectors != 0
                or delta % region.block_sectors != 0):
            return None
        return (owner[0], owner[1] + delta // region.block_sectors)

    def _fan_flush(self, parent: Buf) -> None:
        live = [m for m in self.members if m.live]
        if not live:
            self._finish_parent(parent, _JoinState(parent), all_dead=True)
            return
        targets = [m for m in live if m.write_cache is not None]
        state = _JoinState(parent)
        if not targets:
            # Every live member is write-through: already durable.
            self._finish_parent(parent, state)
            return
        state.pending = len(targets)
        for member in targets:
            child = Buf.flush(self.engine, owner=parent.owner)
            child.member = member.index
            child.request = parent.request
            child.parent_span = parent.parent_span
            child.iodone.append(self._join_hook(state, member))
            member.driver.stats.incr("flushes")
            member.driver.strategy(child)
        parent.request = None

    # -- join --------------------------------------------------------------
    def _join_hook(self, state: _JoinState, member: VolumeMember):
        def hook(child: Buf) -> None:
            if child.started_at is not None:
                if (state.first_start is None
                        or child.started_at < state.first_start):
                    state.first_start = child.started_at
            if child.error is None:
                member.health.record_success()
                state.ok += 1
                if state.buffer is not None:
                    self._scatter(state, member.index, child)
            else:
                member.health.record_failure()
                if isinstance(child.error, MemberDeadError) \
                        or member.health.degraded:
                    self._mark_failed(member)
                if state.error is None:
                    state.error = child.error
                if self._retry_read(state, child):
                    return  # reissued on another member; still pending
            state.pending -= 1
            if state.pending == 0:
                self._finish_parent(state.parent, state)
        return hook

    def _scatter(self, state: _JoinState, mi: int, child: Buf) -> None:
        assert child.data is not None and state.buffer is not None
        ss = SECTOR_SIZE
        parent = state.parent
        for lsec, off, n in self.member_to_logical(mi, child.sector,
                                                   child.nsectors):
            dst = (lsec - parent.sector) * ss
            state.buffer[dst:dst + n * ss] = child.data[off * ss:(off + n) * ss]

    def _mark_failed(self, member: VolumeMember) -> None:
        if not member.failed:
            member.failed = True
            self.stats.incr("members_failed")

    def _retry_read(self, state: _JoinState, child: Buf) -> bool:
        """Redundant volumes re-aim a failed read at an untried live copy."""
        return False

    def _finish_parent(self, parent: Buf, state: _JoinState,
                       all_dead: bool = False) -> None:
        error: "BaseException | None" = None
        if all_dead:
            error = MemberDeadError(
                f"{self.describe()}: no live members for {parent!r}")
        elif state.error is not None:
            if self.redundant and not parent.is_read and state.ok > 0:
                # Degraded durability: the survivors hold the bytes.
                self.stats.incr("degraded_writes")
            else:
                error = state.error
        if parent.is_read and error is None and state.buffer is not None:
            parent.data = bytes(state.buffer)
        now = self.engine.now
        start = state.first_start if state.first_start is not None else now
        parent.started_at = start
        self.wait_hist.observe(start - parent.issued_at)
        self.service_hist.observe(now - start)
        self.stats.incr("completions")
        if error is not None:
            self.stats.incr("errors")
        if self.outstanding.pop(parent.id, None) is not None:
            self.stats.incr("tracked_completed")
        self.queue_bytes.add(-parent.nbytes)
        self.queue_depth.set(len(self.outstanding))
        parent.complete(error)


class ConcatVolume(MultiVolume):
    """Members appended end to end: address translation is an offset."""

    kind = "concat"

    def __init__(self, engine: "Engine", members: "list[VolumeMember]",
                 spec: VolumeSpec, geometry: DiskGeometry):
        self.member_sectors = members[0].store.total_sectors
        super().__init__(engine, members, spec, geometry)

    def _logical_sectors(self) -> int:
        return self.member_sectors * len(self.members)

    def extents(self, sector, nsectors, write):
        out = []
        size = self.member_sectors
        while nsectors > 0:
            mi, msec = divmod(sector, size)
            run = min(nsectors, size - msec)
            out.append((mi, msec, run))
            sector += run
            nsectors -= run
        return out

    def member_to_logical(self, index, msector, nsectors):
        return [(index * self.member_sectors + msector, 0, nsectors)]

    def logical_of(self, index, msector):
        return index * self.member_sectors + msector

    def member_sector_of(self, index, lsector):
        return lsector - index * self.member_sectors

    def data_read_pieces(self, sector, count):
        return self.extents(sector, count, write=False)

    def data_write_pieces(self, sector, count):
        out = []
        off = 0
        for mi, msec, cnt in self.extents(sector, count, write=True):
            out.append((mi, msec, cnt, off))
            off += cnt
        return out


class StripeVolume(MultiVolume):
    """RAID-0: chunks dealt round-robin, adjacent same-member chunks merged
    into one child transfer so each spindle streams its share."""

    kind = "stripe"

    def __init__(self, engine: "Engine", members: "list[VolumeMember]",
                 spec: VolumeSpec, geometry: DiskGeometry):
        sector_size = members[0].store.sector_size
        self.chunk_sectors = spec.chunk_bytes // sector_size
        if self.chunk_sectors <= 0:
            raise InvalidArgumentError("stripe chunk smaller than a sector")
        if members[0].store.total_sectors % self.chunk_sectors != 0:
            raise InvalidArgumentError(
                f"chunk of {self.chunk_sectors} sectors does not divide the "
                f"member size {members[0].store.total_sectors}")
        super().__init__(engine, members, spec, geometry)

    def _logical_sectors(self) -> int:
        return self.members[0].store.total_sectors * len(self.members)

    def _pieces(self, sector, nsectors):
        """Unmerged ``(member, member_sector, count)``, logical order."""
        chunk = self.chunk_sectors
        n = len(self.members)
        out = []
        while nsectors > 0:
            c, off = divmod(sector, chunk)
            run = min(nsectors, chunk - off)
            out.append((c % n, (c // n) * chunk + off, run))
            sector += run
            nsectors -= run
        return out

    def extents(self, sector, nsectors, write):
        per_member: dict[int, list[list[int]]] = {}
        order: list[int] = []
        for mi, msec, cnt in self._pieces(sector, nsectors):
            runs = per_member.setdefault(mi, [])
            if not runs:
                order.append(mi)
            if runs and runs[-1][0] + runs[-1][1] == msec:
                runs[-1][1] += cnt
            else:
                runs.append([msec, cnt])
        return [(mi, msec, cnt)
                for mi in order for msec, cnt in per_member[mi]]

    def member_to_logical(self, index, msector, nsectors):
        chunk = self.chunk_sectors
        n = len(self.members)
        out = []
        off = 0
        while nsectors > 0:
            mc, coff = divmod(msector, chunk)
            run = min(nsectors, chunk - coff)
            out.append(((mc * n + index) * chunk + coff, off, run))
            msector += run
            off += run
            nsectors -= run
        return out

    def logical_of(self, index, msector):
        chunk = self.chunk_sectors
        mc, off = divmod(msector, chunk)
        return (mc * len(self.members) + index) * chunk + off

    def member_sector_of(self, index, lsector):
        chunk = self.chunk_sectors
        c, off = divmod(lsector, chunk)
        return (c // len(self.members)) * chunk + off

    def data_read_pieces(self, sector, count):
        return self._pieces(sector, count)

    def data_write_pieces(self, sector, count):
        out = []
        off = 0
        for mi, msec, cnt in self._pieces(sector, count):
            out.append((mi, msec, cnt, off))
            off += cnt
        return out


class MirrorVolume(MultiVolume):
    """RAID-1: identical members, balanced reads, degraded-mode survival."""

    kind = "mirror"
    redundant = True

    def __init__(self, engine: "Engine", members: "list[VolumeMember]",
                 spec: VolumeSpec, geometry: DiskGeometry):
        self.read_policy = spec.read_policy
        self._rr = 0
        super().__init__(engine, members, spec, geometry)

    def _logical_sectors(self) -> int:
        return self.members[0].store.total_sectors

    def _read_candidates(self, exclude: "set[int]") -> "list[VolumeMember]":
        return [m for m in self.members
                if m.live and not m.resyncing and m.index not in exclude]

    def _pick_reader(self, exclude: "set[int]") -> "VolumeMember | None":
        cands = self._read_candidates(exclude)
        if not cands:
            return None
        if self.read_policy == "shortest":
            return min(cands, key=lambda m: (
                len(m.driver.queue) + (1 if m.driver._busy else 0), m.index))
        member = cands[self._rr % len(cands)]
        self._rr += 1
        return member

    def extents(self, sector, nsectors, write):
        if write:
            return [(m.index, sector, nsectors)
                    for m in self.members if m.live]
        member = self._pick_reader(set())
        return [] if member is None else [(member.index, sector, nsectors)]

    def member_to_logical(self, index, msector, nsectors):
        return [(msector, 0, nsectors)]

    def logical_of(self, index, msector):
        return msector

    def member_sector_of(self, index, lsector):
        return lsector

    def data_read_pieces(self, sector, count):
        for member in self.members:
            if member.live and not member.resyncing:
                return [(member.index, sector, count)]
        return [(self.members[0].index, sector, count)]

    def data_write_pieces(self, sector, count):
        # Data plane writes every member (dead ones included: offline tools
        # and the shared integrity table address the mirror as one image).
        return [(m.index, sector, count, 0) for m in self.members]

    def data_source_members(self):
        live = [m for m in self.members if m.live and not m.resyncing]
        return live if live else self.members[:1]

    def _retry_read(self, state: _JoinState, child: Buf) -> bool:
        if not state.parent.is_read:
            return False
        member = self._pick_reader(state.tried)
        if member is None:
            return False
        state.tried.add(member.index)
        self.stats.incr("read_retries")
        retry = Buf(self.engine, BufOp.READ, child.sector, child.nsectors,
                    async_=True, ordered=child.ordered, owner=child.owner)
        retry.member = member.index
        retry.request = child.request
        retry.parent_span = child.parent_span
        retry.iodone.append(self._join_hook(state, member))
        member.driver.strategy(retry)
        return True

    # -- resync ------------------------------------------------------------
    def resync(self, index: int,
               clear_faults: bool = True) -> Generator[Any, Any, dict]:
        """Bring member ``index`` back into the mirror: diff its store
        against a live source, copy the differing runs with timed member
        I/O (FUA writes, scrub-style contiguous runs), then verify the
        copy against the integrity region when one is attached.

        Run at quiesce (flush first): volatile survivor entries are not
        part of the durable diff.  Returns a report dict.
        """
        from repro.integrity.scrub import _contiguous_runs

        target = self.members[index]
        source = next((m for m in self.members
                       if m.live and not m.resyncing and m.index != index),
                      None)
        if source is None:
            raise InvalidArgumentError("mirror resync needs a live source")
        if clear_faults:
            target.fault_plan = None
            target.disk.fault_plan = None
        if target.write_cache is not None and target.write_cache.entries:
            target.write_cache.drop_all()  # stale volatile pre-death state
        target.failed = False
        target.resyncing = True
        self.stats.incr("resyncs")
        try:
            diff = source.store.differing_sectors(target.store)
            copied = 0
            for start, end in (_contiguous_runs(diff) if diff else []):
                count = end - start + 1
                rbuf = Buf(self.engine, BufOp.READ, start, count,
                           owner="resync")
                source.driver.strategy(rbuf)
                yield rbuf.done
                wbuf = Buf(self.engine, BufOp.WRITE, start, count,
                           data=rbuf.data, fua=True, owner="resync")
                target.driver.strategy(wbuf)
                yield wbuf.done
                copied += count
            bad_frags: list[int] = []
            region = self.disk.integrity
            if region is not None and diff:
                fs = region.frag_sectors
                frags = sorted({s // fs for s in diff
                                if s < region.nfrags * fs})
                for fstart, fend in (_contiguous_runs(frags) if frags else []):
                    data = target.store.read(fstart * fs,
                                             (fend - fstart + 1) * fs)
                    bad_frags.extend(
                        frag for frag, _ in region.verify_range(
                            fstart * fs, data))
        finally:
            target.resyncing = False
        target.health.reset()
        identical = source.store.digest() == target.store.digest()
        return {
            "member": index,
            "source": source.index,
            "sectors_copied": copied,
            "identical": identical,
            "verify_failures": bad_frags,
        }


# ---------------------------------------------------------------------------
# construction


def build_volume(engine: "Engine", config: "SystemConfig",
                 cpu: "Cpu | None" = None,
                 layout: "str | VolumeSpec | None" = None,
                 store: "DiskStore | list[DiskStore] | None" = None,
                 fault_plan=None):
    """Build the volume ``config``/``layout`` describe.

    ``store`` boots against existing bytes: one :class:`DiskStore` for the
    single layout, a list (one per member) for multi-member layouts.
    ``fault_plan`` is one plan (member 0) or a per-member list.
    """
    spec = VolumeSpec.parse(layout if layout is not None
                            else getattr(config, "layout", "single"))
    n = spec.nmembers
    if store is None:
        stores: "list[DiskStore | None]" = [None] * n
    elif isinstance(store, (list, tuple)):
        if len(store) != n:
            raise InvalidArgumentError(
                f"{len(store)} stores for a {n}-member {spec.kind} volume")
        stores = list(store)
    else:
        if n != 1:
            raise InvalidArgumentError(
                f"a single store cannot boot a {n}-member {spec.kind} "
                f"volume; pass one store per member")
        stores = [store]
    if fault_plan is None:
        plans = [None] * n
    elif isinstance(fault_plan, (list, tuple)):
        if len(fault_plan) != n:
            raise InvalidArgumentError(
                f"{len(fault_plan)} fault plans for {n} members")
        plans = list(fault_plan)
    else:
        plans = [fault_plan] + [None] * (n - 1)
    members = [VolumeMember(engine, i, config, cpu,
                            store=stores[i], fault_plan=plans[i])
               for i in range(n)]
    if spec.kind == "single":
        return SingleVolume(members[0])
    if spec.kind == "mirror":
        return MirrorVolume(engine, members, spec, config.geometry)
    geometry = concat_geometry(config.geometry, n)
    if spec.kind == "concat":
        return ConcatVolume(engine, members, spec, geometry)
    return StripeVolume(engine, members, spec, geometry)
